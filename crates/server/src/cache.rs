//! The query-result cache: a hand-rolled O(1) LRU over a slab-backed
//! intrusive list, plus the server-facing [`QueryCache`] wrapper keyed on
//! `(dataset id, registration generation, normalized query AST, k,
//! engine-option fingerprint)` with hit/miss counters.
//!
//! Repeated exploratory queries — the dominant pattern in shape-based
//! exploration, where a user reissues near-identical ShapeQueries while
//! tweaking k or switching datasets — skip segmentation entirely on a hit.

use shapesearch_core::{EngineOptions, TopKResult};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map. `get` refreshes recency;
/// `insert` evicts the coldest entry once `capacity` is exceeded. All
/// operations are O(1) expected time. Evicted and retained-away values
/// are dropped immediately (slots hold `Option` so a freed slot never
/// pins its old value until reuse).
pub struct LruCache<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn slot(&self, i: usize) -> &Slot<K, V> {
        self.slots[i].as_ref().expect("occupied slot")
    }

    fn slot_mut(&mut self, i: usize) -> &mut Slot<K, V> {
        self.slots[i].as_mut().expect("occupied slot")
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        let head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = head;
        }
        if head != NIL {
            self.slot_mut(head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Releases slot `i`: unlinks it, drops its contents, recycles the
    /// index, and returns the key.
    fn release(&mut self, i: usize) -> K {
        self.unlink(i);
        let slot = self.slots[i].take().expect("occupied slot");
        self.map.remove(&slot.key);
        self.free.push(i);
        slot.key
    }

    /// Fetches a value, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.slot(i).value)
    }

    /// Inserts (or replaces) a value, evicting the least-recently-used
    /// entry if the cache is full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if let Some(&i) = self.map.get(&key) {
            self.slot_mut(i).value = value;
            if i != self.head {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            evicted = Some(self.release(lru));
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
        evicted
    }

    /// Drops every entry whose key fails the predicate (used when a
    /// dataset is replaced and its cached results must go).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let doomed: Vec<usize> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, &i)| i)
            .collect();
        for i in doomed {
            self.release(i);
        }
    }

    /// Keys from most to least recently used (test/debug helper).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            let s = self.slot(i);
            out.push(s.key.clone());
            i = s.next;
        }
        out
    }
}

/// The cache key. The query component is the *canonical* rendering of the
/// parsed AST (`ShapeQuery`'s `Display`), so textual variants of the same
/// query — extra whitespace, NL phrasings that translate to the same AST,
/// sugared regex forms — all hit the same entry. `generation` is the
/// dataset's registration counter: re-registering an id bumps it, so a
/// slow in-flight query against the replaced engine can never poison the
/// new dataset's keyspace with stale results. The options component
/// fingerprints every engine knob that can change results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub dataset: String,
    pub generation: u64,
    pub query_canon: String,
    pub k: usize,
    pub options_fp: String,
}

impl CacheKey {
    pub fn new(
        dataset: &str,
        generation: u64,
        query: &shapesearch_core::ShapeQuery,
        k: usize,
        options: &EngineOptions,
    ) -> Self {
        Self {
            dataset: dataset.to_owned(),
            generation,
            query_canon: query.to_string(),
            k,
            options_fp: options_fingerprint(options),
        }
    }
}

/// A deterministic fingerprint of every result-affecting engine option.
/// `parallel` is deliberately excluded: it changes scheduling, not
/// results (`parallel_matches_sequential` in the engine tests).
pub fn options_fingerprint(o: &EngineOptions) -> String {
    format!(
        "seg={:?};bin={};push={};params={:?};prune={:?}",
        o.segmenter, o.bin_width, o.pushdown, o.params, o.pruning
    )
}

/// Cache statistics surfaced through `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    pub capacity: usize,
}

/// The shared, thread-safe query-result cache.
pub struct QueryCache {
    inner: Mutex<LruCache<CacheKey, Arc<Vec<TopKResult>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a result, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<TopKResult>>> {
        let mut cache = self.inner.lock().expect("cache lock");
        match cache.get(key) {
            Some(v) => {
                let v = Arc::clone(v);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub fn insert(&self, key: CacheKey, value: Arc<Vec<TopKResult>>) {
        self.inner.lock().expect("cache lock").insert(key, value);
    }

    /// Forgets every entry belonging to `dataset` (any generation),
    /// releasing their memory now rather than waiting for LRU churn.
    pub fn invalidate_dataset(&self, dataset: &str) {
        self.inner
            .lock()
            .expect("cache lock")
            .retain(|k| k.dataset != dataset);
    }

    pub fn stats(&self) -> CacheStats {
        let cache = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: cache.len(),
            capacity: cache.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapesearch_core::SegmenterKind;
    use std::sync::Weak;

    #[test]
    fn lru_evicts_coldest_first() {
        let mut lru = LruCache::new(3);
        assert_eq!(lru.insert("a", 1), None);
        assert_eq!(lru.insert("b", 2), None);
        assert_eq!(lru.insert("c", 3), None);
        // Touch "a" so "b" becomes the coldest.
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.insert("d", 4), Some("b"));
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.keys_by_recency(), vec!["d", "a", "c"]);
        // Two more inserts evict "c" then "a".
        assert_eq!(lru.insert("e", 5), Some("c"));
        assert_eq!(lru.insert("f", 6), Some("a"));
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.keys_by_recency(), vec!["f", "e", "d"]);
    }

    #[test]
    fn lru_replacing_does_not_evict() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 10), None);
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.get(&"b"), Some(&2));
    }

    #[test]
    fn lru_single_slot() {
        let mut lru = LruCache::new(1);
        lru.insert(1, "x");
        assert_eq!(lru.insert(2, "y"), Some(1));
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&"y"));
    }

    #[test]
    fn lru_retain_unlinks_cleanly() {
        let mut lru = LruCache::new(4);
        for i in 0..4 {
            lru.insert(i, i * 10);
        }
        lru.retain(|&k| k % 2 == 0);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&20));
        // The list is still sound: inserts + eviction keep working.
        lru.insert(8, 80);
        lru.insert(9, 90);
        lru.insert(10, 100);
        assert_eq!(lru.len(), 4);
    }

    #[test]
    fn eviction_and_retain_drop_values_immediately() {
        let mut lru: LruCache<&str, Arc<Vec<u8>>> = LruCache::new(2);
        let a = Arc::new(vec![1u8; 16]);
        let weak_a: Weak<Vec<u8>> = Arc::downgrade(&a);
        lru.insert("a", a);
        lru.insert("b", Arc::new(Vec::new()));
        // Evicting "a" must release the only strong reference now, not
        // when the slot is eventually reused.
        assert_eq!(lru.insert("c", Arc::new(Vec::new())), Some("a"));
        assert!(weak_a.upgrade().is_none(), "evicted value still alive");

        let b_weak = {
            let b = lru.get(&"b").unwrap();
            Arc::downgrade(b)
        };
        lru.retain(|&k| k != "b");
        assert!(
            b_weak.upgrade().is_none(),
            "retained-away value still alive"
        );
    }

    #[test]
    fn cache_key_normalizes_query_text() {
        let opts = EngineOptions::default();
        let a = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        let b = shapesearch_parser::parse_regex(" [ p = up ] [ p = down ] ").unwrap();
        let ka = CacheKey::new("ds1", 1, &a, 5, &opts);
        let kb = CacheKey::new("ds1", 1, &b, 5, &opts);
        assert_eq!(ka, kb, "whitespace variants must share one cache entry");
        // Different k, dataset, generation, or algorithm each split the key.
        assert_ne!(ka, CacheKey::new("ds1", 1, &a, 6, &opts));
        assert_ne!(ka, CacheKey::new("ds2", 1, &a, 5, &opts));
        assert_ne!(ka, CacheKey::new("ds1", 2, &a, 5, &opts));
        let dp = EngineOptions {
            segmenter: SegmenterKind::Dp,
            ..EngineOptions::default()
        };
        assert_ne!(ka, CacheKey::new("ds1", 1, &a, 5, &dp));
    }

    #[test]
    fn options_fingerprint_ignores_parallel() {
        let seq = EngineOptions::default();
        let par = EngineOptions {
            parallel: true,
            ..EngineOptions::default()
        };
        assert_eq!(options_fingerprint(&seq), options_fingerprint(&par));
    }

    #[test]
    fn query_cache_counts_and_invalidates() {
        let cache = QueryCache::new(8);
        let q = shapesearch_parser::parse_regex("[p=up]").unwrap();
        let key = CacheKey::new("sales", 1, &q, 3, &EngineOptions::default());
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), Arc::new(Vec::new()));
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // Invalidation drops every generation of the dataset.
        let key2 = CacheKey::new("sales", 2, &q, 3, &EngineOptions::default());
        cache.insert(key2, Arc::new(Vec::new()));
        cache.invalidate_dataset("sales");
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
