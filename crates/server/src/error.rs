//! Server-side error type mapping onto HTTP status codes.

use std::fmt;

/// An error with the HTTP status it should be reported as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    pub status: u16,
    pub message: String,
}

impl ServerError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for ServerError {}
