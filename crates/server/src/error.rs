//! Server-side error type mapping onto HTTP status codes.

use std::fmt;

/// An error with the HTTP status it should be reported as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The HTTP status code to respond with.
    pub status: u16,
    /// Human-readable description, surfaced as `{"error": …}`.
    pub message: String,
}

impl ServerError {
    /// A 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// A 404 Not Found.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    /// A 500 Internal Server Error.
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            message: message.into(),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for ServerError {}
