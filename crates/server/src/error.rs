//! Server-side error type mapping onto HTTP status codes.

use std::fmt;

/// An error with the HTTP status it should be reported as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The HTTP status code to respond with.
    pub status: u16,
    /// Human-readable description, surfaced as `{"error": …}`.
    pub message: String,
    /// Optional machine-readable code (e.g. `shard_unavailable`),
    /// surfaced as `{"code": …}` next to the message so clients can
    /// branch programmatically instead of pattern-matching error text.
    pub code: Option<&'static str>,
}

impl ServerError {
    /// A 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
            code: None,
        }
    }

    /// A 404 Not Found.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
            code: None,
        }
    }

    /// A 500 Internal Server Error.
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            message: message.into(),
            code: None,
        }
    }

    /// A 400 Bad Request carrying the machine-readable
    /// `snapshot_invalid` code: the named snapshot file failed
    /// validation at open (bad magic, unknown format version, checksum
    /// mismatch, truncation, or a violated structural invariant). The
    /// registration is refused before any data is served — a torn
    /// snapshot is a structured error, never a panic or garbage top-k.
    pub fn invalid_snapshot(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
            code: Some("snapshot_invalid"),
        }
    }

    /// A 502 Bad Gateway carrying the machine-readable
    /// `shard_unavailable` code: a remote shard endpoint could not be
    /// reached (or answered garbage), so the query's global top-k could
    /// not be assembled. The message names the endpoint — the one piece
    /// of context an operator needs to repoint or restart the shard.
    pub fn shard_unavailable(endpoint: &str, detail: impl fmt::Display) -> Self {
        Self {
            status: 502,
            message: format!("shard endpoint {endpoint} unavailable: {detail}"),
            code: Some("shard_unavailable"),
        }
    }

    /// A 502 `shard_unavailable` for a replicated shard whose **every**
    /// replica failed. Unlike [`shard_unavailable`](Self::shard_unavailable)
    /// (which names one endpoint), the message lists every attempted
    /// replica with its failure, in try order — the operator reads the
    /// whole failover path, not just the last stop.
    pub fn replicas_unavailable<'a>(
        attempts: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Self {
        let attempts: Vec<String> = attempts
            .into_iter()
            .map(|(endpoint, why)| format!("{endpoint} ({why})"))
            .collect();
        Self {
            status: 502,
            message: format!(
                "shard unavailable after {} replica attempt(s): {}",
                attempts.len(),
                attempts.join("; ")
            ),
            code: Some("shard_unavailable"),
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for ServerError {}
