//! Minimal recursive-descent JSON for the wire protocol.
//!
//! The datastore crate has a JSON-*lines* reader for flat records; the
//! server needs full nested JSON (arrays, objects, booleans) for request
//! and response bodies, still without external dependencies. Objects
//! preserve insertion order so responses serialize deterministically.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers print without a trailing ".0".
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no NaN/Infinity; scores are clamped anyway.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Builds an object from key/value pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text.
///
/// # Errors
/// Returns a human-readable message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

/// Nesting cap: recursion is one stack frame per level, and a worker
/// thread must survive any body MAX_BODY admits (a stack overflow
/// aborts the whole process — `catch_unwind` cannot contain it).
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => take_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => take_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => take_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(b) if *b == b'-' || b.is_ascii_digit() => parse_number(bytes, pos),
        Some(b) => Err(format!("unexpected `{}` at byte {pos}", *b as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn take_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => *pos += 1,
            _ => break,
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("dangling escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        // Shared surrogate-pair-aware decoder (also used
                        // by the datastore's JSON-lines reader).
                        let c = shapesearch_datastore::json::decode_unicode_escape(bytes, pos)?;
                        out.push(c);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                let start = *pos - 1;
                let width = shapesearch_datastore::json::utf8_width(b);
                *pos = start + width;
                if *pos > bytes.len() {
                    return Err("truncated utf-8 sequence".into());
                }
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid utf-8 in string".to_owned())?;
                out.push_str(s);
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"name":"q1","k":5,"nested":{"arr":[1,2.5,true,null,"s"]},"flag":false}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("k").unwrap().as_usize(), Some(5));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(false));
        let arr = v
            .get("nested")
            .unwrap()
            .get("arr")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(arr.len(), 5);
        let reparsed = parse(&v.to_text()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\n\"b\"\t\\ é \u{1}".into());
        let reparsed = parse(&v.to_text()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(5.0).to_text(), "5");
        assert_eq!(Json::Num(-0.5).to_text(), "-0.5");
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"open",
            "{} extra",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_chars() {
        // U+1F4C8 (chart with upwards trend) in JSON's UTF-16 escapes.
        let v = parse(r#""\ud83d\udcc8 sales""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F4C8} sales"));
        // Unpaired or reversed surrogates are rejected, not replaced.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dxx""#).is_err());
        assert!(parse(r#""\udcc8\ud83d""#).is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // At the cap it still parses.
        let ok_depth = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok_depth).is_ok());
    }

    #[test]
    fn obj_builder_preserves_order() {
        let v = obj([("z", "a".into()), ("a", 1usize.into())]);
        assert_eq!(v.to_text(), r#"{"z":"a","a":1}"#);
    }
}
