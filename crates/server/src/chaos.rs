//! A fault-injecting TCP proxy for exercising the distributed tier's
//! failure paths, std-only like everything else in this crate.
//!
//! [`ChaosProxy`] listens on an ephemeral local port and forwards each
//! accepted connection to a fixed upstream endpoint, subject to the
//! proxy's current [`ChaosMode`]:
//!
//! * [`Pass`](ChaosMode::Pass) — a faithful byte pump in both
//!   directions (the control case: a healthy replica behind one more
//!   hop).
//! * [`BlackHole`](ChaosMode::BlackHole) — accepts the connection,
//!   reads and discards the request, and never answers. The client sees
//!   a hang that only its own I/O timeout can end — the shape of a
//!   partitioned or wedged replica.
//! * [`Reset`](ChaosMode::Reset) — accepts, then drops the socket with
//!   the request bytes still unread, which makes the kernel send `RST`
//!   rather than a clean `FIN`: the client's write or read fails with a
//!   connection reset — the shape of a crashed replica.
//! * [`Delay`](ChaosMode::Delay) — a faithful pump that sits on the
//!   upstream's response for the configured duration before relaying
//!   it — the shape of a struggling replica that still answers
//!   correctly. Results must stay byte-identical; only latency moves.
//! * [`Truncate`](ChaosMode::Truncate) — relays only the first `n`
//!   bytes of the upstream's response and then closes, leaving the
//!   client with a syntactically broken reply — the shape of a replica
//!   dying mid-send. The client must treat the endpoint as failed, not
//!   try to parse the fragment into an answer.
//!
//! The mode is consulted **per accepted connection** and can be changed
//! at any time with [`ChaosProxy::set_mode`], so one proxy can play a
//! healthy replica in one phase of a test and a dead one in the next
//! without anything re-registering endpoints. A mode switch also
//! **severs** every connection the proxy has accepted so far: a pooled
//! keep-alive tunnel opened while the proxy was healthy would otherwise
//! keep relaying faithfully after the switch, and the failure phase of
//! a test would silently exercise nothing. Every failure mode here is
//! survivable by construction for the failover client: `/shard/query`
//! is a pure idempotent read, so a request lost to any of these can be
//! retried verbatim on the next replica.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// What the proxy does to the next accepted connection. See the module
/// docs for the failure each mode models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Forward faithfully in both directions.
    Pass,
    /// Accept, discard the request, never answer.
    BlackHole,
    /// Accept, then drop the socket with unread data so the kernel
    /// sends `RST`.
    Reset,
    /// Forward faithfully, but hold the response back this long first.
    Delay(Duration),
    /// Forward only the first `n` response bytes, then close.
    Truncate(usize),
}

/// A fault-injecting TCP proxy in front of one upstream endpoint.
///
/// Dropping the proxy shuts it down; [`shutdown`](Self::shutdown) does
/// the same explicitly (idempotently). In-flight connection threads are
/// detached — they hold no lock and die with their sockets.
pub struct ChaosProxy {
    addr: SocketAddr,
    mode: Arc<Mutex<ChaosMode>>,
    connections: Arc<AtomicUsize>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral `127.0.0.1` port forwarding to
    /// `upstream`, initially in [`ChaosMode::Pass`].
    pub fn start(upstream: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mode = Arc::new(Mutex::new(ChaosMode::Pass));
        let connections = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let upstream = upstream.to_owned();
            let mode = Arc::clone(&mode);
            let connections = Arc::clone(&connections);
            let live = Arc::clone(&live);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                for client in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = client else { continue };
                    connections.fetch_add(1, Ordering::SeqCst);
                    let mode = *mode.lock().expect("chaos mode lock");
                    // Reset-mode connections must NOT be retained for
                    // severing: a retained clone is a second handle on
                    // the socket, and the mode's deliberate drop of the
                    // *sole* handle — what makes the kernel send `RST`
                    // for the unread request bytes — would close
                    // nothing.
                    if mode != ChaosMode::Reset {
                        if let Ok(clone) = client.try_clone() {
                            live.lock().expect("chaos live lock").push(clone);
                        }
                    }
                    let upstream = upstream.clone();
                    thread::spawn(move || serve_connection(client, &upstream, mode));
                }
            })
        };

        Ok(Self {
            addr,
            mode,
            connections,
            live,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's own listen address — what a router should be pointed
    /// at in place of the real replica.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// [`addr`](Self::addr) as the `host:port` string the wire protocol
    /// uses for endpoints.
    pub fn endpoint(&self) -> String {
        self.addr.to_string()
    }

    /// Switches the failure mode for subsequently accepted connections,
    /// and severs every connection accepted so far: a keep-alive tunnel
    /// pooled while the proxy was passing traffic must not keep serving
    /// the old mode after the switch.
    pub fn set_mode(&self, mode: ChaosMode) {
        *self.mode.lock().expect("chaos mode lock") = mode;
        self.sever();
    }

    /// Shuts down every connection accepted so far; their relay threads
    /// notice on the next read or write and exit.
    fn sever(&self) {
        for stream in self.live.lock().expect("chaos live lock").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Total connections accepted so far — lets a test assert the
    /// traffic actually flowed through the proxy.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stops accepting. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.sever();
        // Unblock the accept loop with one throwaway connection; it
        // checks `stop` before serving anything.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one accepted connection under the mode it was accepted with.
fn serve_connection(mut client: TcpStream, upstream: &str, mode: ChaosMode) {
    // Nothing here should be able to wedge a test forever, whatever the
    // peers do.
    let cap = Some(Duration::from_secs(30));
    let _ = client.set_read_timeout(cap);
    let _ = client.set_write_timeout(cap);
    match mode {
        ChaosMode::Reset => {
            // Let the client finish (or at least start) its send so
            // there are unread bytes in our receive buffer, then drop
            // without reading them — closing with pending unread data
            // makes the kernel send `RST` instead of an orderly `FIN`.
            thread::sleep(Duration::from_millis(50));
            drop(client);
        }
        ChaosMode::BlackHole => {
            // Swallow the request, then go silent with the socket held
            // open — no FIN, no bytes: the client's own I/O timeout is
            // the only way out. The hold is capped so the thread cannot
            // outlive a test run by more than the cap.
            let mut sink = [0u8; 4096];
            while let Ok(n) = client.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
            thread::sleep(Duration::from_secs(30));
        }
        ChaosMode::Pass => pump(client, upstream, None, usize::MAX),
        ChaosMode::Delay(wait) => pump(client, upstream, Some(wait), usize::MAX),
        ChaosMode::Truncate(bytes) => pump(client, upstream, None, bytes),
    }
}

/// The request/response pump shared by the forwarding modes: relays the
/// client's bytes upstream and the upstream's bytes back, optionally
/// sleeping before the first response byte and capping the total
/// response bytes relayed.
///
/// The request side is drained on its own thread (requests and
/// responses can interleave on a keep-alive connection); the response
/// side runs here so `delay`/`cap` apply to it precisely.
fn pump(client: TcpStream, upstream: &str, delay: Option<Duration>, cap: usize) {
    let Ok(server) = TcpStream::connect(upstream) else {
        // Upstream genuinely down: drop the client, which sees a closed
        // connection — exactly what talking to the dead endpoint
        // directly would have produced.
        return;
    };
    let cap_timeout = Some(Duration::from_secs(30));
    let _ = server.set_read_timeout(cap_timeout);
    let _ = server.set_write_timeout(cap_timeout);

    let up = {
        let (mut client, mut server) = match (client.try_clone(), server.try_clone()) {
            (Ok(c), Ok(s)) => (c, s),
            _ => return,
        };
        thread::spawn(move || {
            let mut buf = [0u8; 4096];
            while let Ok(n) = client.read(&mut buf) {
                if n == 0 || server.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            let _ = server.shutdown(Shutdown::Write);
        })
    };

    let mut relayed = 0usize;
    let mut first = true;
    let mut buf = [0u8; 4096];
    let mut server = server;
    let mut client = client;
    while relayed < cap {
        let n = match server.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if first {
            if let Some(wait) = delay {
                thread::sleep(wait);
            }
            first = false;
        }
        let n = n.min(cap - relayed);
        if client.write_all(&buf[..n]).is_err() {
            break;
        }
        relayed += n;
    }
    // Truncation closes abruptly; for clean pumps this is the normal
    // end-of-response FIN.
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
    let _ = up.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A tiny upstream that answers every HTTP-ish request on one
    /// connection with a fixed body, newline-framed for simplicity.
    fn echo_upstream(body: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    while reader.read_line(&mut line).is_ok() && !line.is_empty() {
                        let mut stream = stream.try_clone().unwrap();
                        if stream.write_all(body.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    fn ask(addr: SocketAddr) -> std::io::Result<String> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.write_all(b"ping\n")?;
        stream.shutdown(Shutdown::Write)?;
        let mut reply = String::new();
        stream.read_to_string(&mut reply)?;
        Ok(reply)
    }

    #[test]
    fn pass_mode_is_transparent_and_counts_connections() {
        let upstream = echo_upstream("pong\n");
        let mut proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        assert_eq!(ask(proxy.addr()).unwrap(), "pong\n");
        assert_eq!(proxy.connections(), 1);
        proxy.shutdown();
    }

    #[test]
    fn switching_modes_severs_established_tunnels() {
        let upstream = echo_upstream("pong\n");
        let mut proxy = ChaosProxy::start(&upstream.to_string()).unwrap();
        let stream = TcpStream::connect_timeout(&proxy.addr(), Duration::from_secs(2)).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"ping\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "pong\n");

        // The tunnel is healthy and could be pooled by a keep-alive
        // client. Switching modes must kill it, not just future ones.
        proxy.set_mode(ChaosMode::Reset);
        line.clear();
        let after = reader.read_line(&mut line);
        assert!(
            after.is_err() || line.is_empty(),
            "severed tunnel must not keep serving: {line:?}"
        );
        proxy.shutdown();
    }

    #[test]
    fn failure_modes_starve_reset_or_truncate_the_client() {
        let upstream = echo_upstream("a longer reply than the cap\n");
        let mut proxy = ChaosProxy::start(&upstream.to_string()).unwrap();

        proxy.set_mode(ChaosMode::BlackHole);
        // No bytes ever come back; the client's read times out.
        let starved = ask(proxy.addr());
        assert!(starved.is_err(), "black hole must starve: {starved:?}");

        proxy.set_mode(ChaosMode::Reset);
        // The write or read fails with reset/abort — never a clean
        // empty success carrying a well-formed reply.
        match ask(proxy.addr()) {
            Err(_) => {}
            Ok(reply) => assert_eq!(reply, "", "reset must not produce a reply"),
        }

        proxy.set_mode(ChaosMode::Truncate(8));
        let cut = ask(proxy.addr()).unwrap_or_default();
        assert!(
            cut.len() <= 8 && "a longer reply than the cap\n".starts_with(&cut),
            "truncation must cut mid-body: {cut:?}"
        );

        proxy.set_mode(ChaosMode::Delay(Duration::from_millis(50)));
        let started = std::time::Instant::now();
        assert_eq!(ask(proxy.addr()).unwrap(), "a longer reply than the cap\n");
        assert!(
            started.elapsed() >= Duration::from_millis(50),
            "delay must actually wait"
        );
        proxy.shutdown();
    }
}
