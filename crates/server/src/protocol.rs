//! The JSON wire protocol: typed request extraction and response
//! construction for the four routes.
//!
//! ```text
//! POST /datasets  {"name", "id"?, "csv"|"jsonl"|"path", "z", "x", "y",
//!                  "filters"?: [{"column","op","value"}], "agg"?,
//!                  "builtins"?: bool, "shards"?: n}
//! GET  /datasets  → {"datasets":[{"id","name","z","x","y",
//!                  "trendlines","points","shards"}]}
//! POST /query     {"dataset", "query"|"nl", "k"?, "algo"?, "bin_width"?,
//!                  "pushdown"?, "parallel"?}
//!              or [ {…}, {…}, … ]       (a batch of up to the server's
//!                                        max batch size, default
//!                                        MAX_BATCH_SIZE)
//!              → single: {"dataset","query","k","algo","shards","cached",
//!                         "coalesced","micros","shard_micros"?,
//!                         "results",…}
//!              → batch:  {"batch": n, "micros": total,
//!                         "responses": [per-query objects or
//!                                       {"error","status"}]}
//! GET  /healthz   → {"status","datasets","queries",
//!                    "cache":{"lookups","hits","misses","coalesced",…},
//!                    "shards":{"default","dataset_shards",
//!                              "compute_workers","tasks","micros_total"}}
//! ```
//!
//! Oversized batches are refused with a *structured* 400 so clients can
//! split and retry programmatically:
//! `{"error": …, "code": "batch_too_large", "max_batch": …, "batch_len": …}`.

use crate::catalog::{DataSource, DatasetEntry, DatasetSpec};
use crate::error::ServerError;
use crate::json::{obj, Json};
use shapesearch_core::{EngineOptions, SegmenterKind, ShapeQuery, TopKResult};
use shapesearch_datastore::{Aggregation, CompareOp, Predicate, Value, VisualSpec};

/// Default upper bound on the number of queries one `POST /query` batch
/// may carry (configurable per server via `ServerConfig::max_batch` /
/// `shapesearch serve --max-batch`). Batches above the server's limit are
/// rejected with a structured 400: `{"error", "code": "batch_too_large",
/// "max_batch", "batch_len"}`. The bound keeps one request from pinning a
/// worker thread on an unbounded amount of engine work.
pub const MAX_BATCH_SIZE: usize = 64;

fn required_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ServerError> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ServerError::bad_request(format!("missing string field `{key}`")))
}

/// Parses a `POST /datasets` body.
pub fn dataset_spec_from_json(body: &Json) -> Result<DatasetSpec, ServerError> {
    let name = required_str(body, "name")?.to_owned();
    let id = body.get("id").and_then(Json::as_str).map(str::to_owned);

    let source = match (
        body.get("csv").and_then(Json::as_str),
        body.get("jsonl").and_then(Json::as_str),
        body.get("path").and_then(Json::as_str),
    ) {
        (Some(text), None, None) => DataSource::InlineCsv(text.to_owned()),
        (None, Some(text), None) => DataSource::InlineJsonl(text.to_owned()),
        (None, None, Some(path)) => DataSource::Path(path.to_owned()),
        _ => {
            return Err(ServerError::bad_request(
                "exactly one of `csv`, `jsonl`, or `path` is required",
            ))
        }
    };

    let mut visual = VisualSpec::new(
        required_str(body, "z")?,
        required_str(body, "x")?,
        required_str(body, "y")?,
    );
    if let Some(filters) = body.get("filters").and_then(Json::as_array) {
        for f in filters {
            visual = visual.with_filter(predicate_from_json(f)?);
        }
    }
    if let Some(agg) = body.get("agg").and_then(Json::as_str) {
        let agg = Aggregation::parse(agg)
            .ok_or_else(|| ServerError::bad_request(format!("unknown aggregation `{agg}`")))?;
        visual = visual.with_aggregation(agg);
    }

    Ok(DatasetSpec {
        id,
        name,
        source,
        visual,
        builtins: body.get("builtins").and_then(Json::as_bool).unwrap_or(true),
        shards: body.get("shards").and_then(Json::as_usize),
    })
}

fn predicate_from_json(f: &Json) -> Result<Predicate, ServerError> {
    let column = required_str(f, "column")?;
    let op = match required_str(f, "op")? {
        "=" | "==" | "eq" => CompareOp::Eq,
        "!=" | "ne" => CompareOp::Ne,
        "<" | "lt" => CompareOp::Lt,
        "<=" | "le" => CompareOp::Le,
        ">" | "gt" => CompareOp::Gt,
        ">=" | "ge" => CompareOp::Ge,
        other => {
            return Err(ServerError::bad_request(format!(
                "unknown filter op `{other}`"
            )))
        }
    };
    let value = match f.get("value") {
        Some(Json::Num(n)) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                Value::Int(*n as i64)
            } else {
                Value::Float(*n)
            }
        }
        Some(Json::Str(s)) => Value::infer(s),
        Some(Json::Bool(b)) => Value::Int(i64::from(*b)),
        Some(Json::Null) | None => Value::Null,
        Some(other) => {
            return Err(ServerError::bad_request(format!(
                "unsupported filter value {other:?}"
            )))
        }
    };
    Ok(Predicate::new(column, op, value))
}

/// The parsed body of one `POST /query` query object (a batch is an
/// array of these).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Id of the dataset to query.
    pub dataset: String,
    /// Regex-syntax query text, if given.
    pub query: Option<String>,
    /// Natural-language query text, if given (used when `query` absent).
    pub nl: Option<String>,
    /// Number of results requested (default 5).
    pub k: usize,
    /// Segmentation algorithm override.
    pub algo: Option<SegmenterKind>,
    /// GROUP binning-width override.
    pub bin_width: Option<usize>,
    /// Push-down optimization override.
    pub pushdown: Option<bool>,
    /// Engine viz-level parallelism override.
    pub parallel: Option<bool>,
}

/// Parses one query object of a `POST /query` body.
pub fn query_request_from_json(body: &Json) -> Result<QueryRequest, ServerError> {
    let dataset = required_str(body, "dataset")?.to_owned();
    let query = body.get("query").and_then(Json::as_str).map(str::to_owned);
    let nl = body.get("nl").and_then(Json::as_str).map(str::to_owned);
    if query.is_none() && nl.is_none() {
        return Err(ServerError::bad_request(
            "one of `query` or `nl` is required",
        ));
    }
    let algo = match body.get("algo").and_then(Json::as_str) {
        Some(name) => Some(
            SegmenterKind::parse(name)
                .ok_or_else(|| ServerError::bad_request(format!("unknown algo `{name}`")))?,
        ),
        None => None,
    };
    Ok(QueryRequest {
        dataset,
        query,
        nl,
        k: body.get("k").and_then(Json::as_usize).unwrap_or(5),
        algo,
        bin_width: body.get("bin_width").and_then(Json::as_usize),
        pushdown: body.get("pushdown").and_then(Json::as_bool),
        parallel: body.get("parallel").and_then(Json::as_bool),
    })
}

impl QueryRequest {
    /// The effective engine options: the dataset defaults overridden by
    /// whatever the request pins down.
    pub fn effective_options(&self, defaults: &EngineOptions) -> EngineOptions {
        let mut options = defaults.clone();
        if let Some(algo) = self.algo {
            options.segmenter = algo;
        }
        if let Some(bin_width) = self.bin_width {
            options.bin_width = bin_width.max(1);
        }
        if let Some(pushdown) = self.pushdown {
            options.pushdown = pushdown;
        }
        if let Some(parallel) = self.parallel {
            options.parallel = parallel;
        }
        options
    }
}

/// Parses the request's query text into an AST (regex syntax first,
/// falling back to the NL pipeline when only `nl` was given). Returns
/// the AST plus any NL translation notes.
pub fn parse_query(request: &QueryRequest) -> Result<(ShapeQuery, Vec<String>), ServerError> {
    if let Some(text) = &request.query {
        let query = shapesearch_parser::parse_regex(text)
            .map_err(|e| ServerError::bad_request(format!("query parse error: {e}")))?;
        return Ok((query, Vec::new()));
    }
    let text = request.nl.as_deref().expect("validated at extraction");
    let parsed = shapesearch_parser::parse_natural_language(text)
        .map_err(|e| ServerError::bad_request(format!("natural-language parse error: {e}")))?;
    Ok((parsed.query, parsed.notes))
}

/// Serializes a catalog entry for listings and registration replies.
pub fn dataset_to_json(entry: &DatasetEntry) -> Json {
    obj([
        ("id", entry.id.as_str().into()),
        ("name", entry.name.as_str().into()),
        ("z", entry.visual.z.as_str().into()),
        ("x", entry.visual.x.as_str().into()),
        ("y", entry.visual.y.as_str().into()),
        ("trendlines", entry.trendline_count.into()),
        ("points", entry.point_count.into()),
        ("shards", entry.shard_count.into()),
    ])
}

/// Serializes a top-k answer as the wire `results` array.
pub fn results_to_json(results: &[TopKResult]) -> Json {
    Json::Arr(
        results
            .iter()
            .map(|r| {
                obj([
                    ("key", r.key.as_str().into()),
                    ("score", r.score.into()),
                    ("viz_index", r.viz_index.into()),
                    (
                        "ranges",
                        Json::Arr(
                            r.ranges
                                .iter()
                                .map(|&(s, e)| Json::Arr(vec![s.into(), e.into()]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Serializes an error as the wire `{"error": …}` object.
pub fn error_to_json(err: &ServerError) -> Json {
    obj([("error", err.message.as_str().into())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn dataset_spec_parses_inline_csv() {
        let body = json::parse(
            r#"{"name":"sales","id":"s1","csv":"z,x,y\na,1,2\n","z":"z","x":"x","y":"y",
                "filters":[{"column":"y","op":">","value":1}],"agg":"sum"}"#,
        )
        .unwrap();
        let spec = dataset_spec_from_json(&body).unwrap();
        assert_eq!(spec.id.as_deref(), Some("s1"));
        assert_eq!(spec.visual.filters.len(), 1);
        assert_eq!(spec.visual.aggregation, Aggregation::Sum);
        assert!(matches!(spec.source, DataSource::InlineCsv(_)));
    }

    #[test]
    fn dataset_spec_rejects_ambiguous_source() {
        let body =
            json::parse(r#"{"name":"x","csv":"a","path":"b","z":"z","x":"x","y":"y"}"#).unwrap();
        assert!(dataset_spec_from_json(&body).is_err());
    }

    #[test]
    fn query_request_parses_and_overrides_options() {
        let body = json::parse(
            r#"{"dataset":"s1","query":"[p=up]","k":3,"algo":"dp","bin_width":2,"pushdown":false}"#,
        )
        .unwrap();
        let req = query_request_from_json(&body).unwrap();
        assert_eq!(req.k, 3);
        let options = req.effective_options(&EngineOptions::default());
        assert_eq!(options.segmenter, SegmenterKind::Dp);
        assert_eq!(options.bin_width, 2);
        assert!(!options.pushdown);
    }

    #[test]
    fn query_request_requires_some_query() {
        let body = json::parse(r#"{"dataset":"s1","k":3}"#).unwrap();
        assert!(query_request_from_json(&body).is_err());
        let body = json::parse(r#"{"dataset":"s1","algo":"warp"}"#).unwrap();
        assert!(query_request_from_json(&body).is_err());
    }

    #[test]
    fn nl_and_regex_share_canonical_ast() {
        let nl_req = QueryRequest {
            dataset: "d".into(),
            query: None,
            nl: Some("rising then falling".into()),
            k: 5,
            algo: None,
            bin_width: None,
            pushdown: None,
            parallel: None,
        };
        let (nl_query, _) = parse_query(&nl_req).unwrap();
        let direct = shapesearch_parser::parse_regex(&nl_query.to_string()).unwrap();
        assert_eq!(nl_query, direct, "canonical text must reparse identically");
    }
}
