//! The JSON wire protocol: typed request extraction and response
//! construction for the eight routes.
//!
//! ```text
//! POST /datasets  {"name", "id"?, "csv"|"jsonl"|"path"|"snapshot",
//!                  "z", "x", "y",       (not with "snapshot" — baked in)
//!                  "filters"?: [{"column","op","value"}], "agg"?,
//!                  "builtins"?: bool, "shards"?: n,
//!                  "shard_endpoints"?: ["host:port"
//!                                       |["host:port", …]   (replicas)
//!                                       |null, …]
//!                                    | "registry",
//!                  "shard_of"?: "index/total"}
//! GET  /datasets  → {"datasets":[{"id","name","z","x","y",
//!                  "trendlines","points","shards","placement",
//!                  "shard_of"?,"snapshot"?}]}
//! POST /query     {"dataset", "query"|"nl", "k"?, "algo"?, "bin_width"?,
//!                  "pushdown"?, "parallel"?, "pruning"?, "explain"?,
//!                  "partial"?}
//!              or [ {…}, {…}, … ]       (a batch of up to the server's
//!                                        max batch size, default
//!                                        MAX_BATCH_SIZE)
//!              → single: {"dataset","query","k","algo","shards","cached",
//!                         "coalesced","micros","shard_micros"?,
//!                         "results",…,
//!                         "degraded"?: {"missing_shards":[i,…],
//!                                       "errors":[{"shard","error"},…]},
//!                         "trace"?: {"trace_id","spans","pruning"}}
//!              → batch:  {"batch": n, "micros": total,
//!                         "responses": [per-query objects or
//!                                       {"error","status","code"?}]}
//! POST /registry/heartbeat  {"dataset", "shard_of": "index/total",
//!                            "endpoint": "host:port"}
//!                                    (shard server → router announce)
//!              → {"registered": true}
//! GET  /registry  → {"entries":[{"dataset","shard","shards",
//!                    "endpoint","age_secs","fresh"}],
//!                    "ttl_secs": REGISTRY_TTL_SECS}
//! POST /shard/query   {"dataset", "queries":[{"query","k",
//!                      "threshold_hint": score|null}, …],
//!                      "options": {…}, "trace_id"?: "hex"}
//!                                          (router → shard server RPC)
//!              → {"dataset","outcomes":[{"results":[…],
//!                 "pruned_bound": score|null} or
//!                 {"error","status","code"?}, …],
//!                 "pruning":{"bounded","pruned","scored","bound_micros"},
//!                 "micros", "spans"?: [span tree, traced RPCs only]}
//! GET  /healthz   → {"status","version","git_rev","uptime_secs",
//!                    "started_at","datasets","queries",
//!                    "cache":{"lookups","hits","misses","coalesced",…},
//!                    "shards":{"default","dataset_shards",
//!                              "compute_workers","tasks","micros_total"},
//!                    "pruning":{"bounded","pruned","scored",
//!                               "bound_micros"},
//!                    "remote_shards":{"endpoints","requests","errors",
//!                                     "micros_total","by_endpoint"}}
//! GET  /metrics   → Prometheus text exposition (0.0.4) of the same
//!                   counters plus request/stage/endpoint latency
//!                   histograms (see docs/ARCHITECTURE.md,
//!                   "Observability")
//! ```
//!
//! `explain` requests a per-request trace: the response gains a `trace`
//! object with a request-scoped `trace_id`, a span tree
//! (`{"name", "detail"?, "micros", "spans"?}` via [`crate::obs::Span`])
//! covering every stage, and the computation's pruning counters. For
//! traced computations the `trace_id` rides each outgoing
//! `/shard/query` RPC and the shard server replies with its own span
//! tree (`spans`), which the router stitches under the corresponding
//! `remote_rpc` span — tracing is opt-in per query and never changes
//! results or cache keys, and untraced RPC replies omit `spans`
//! entirely.
//!
//! `threshold_hint` is the §6.3 top-k threshold the router has proven so
//! far for that query — a pure accelerator the shard server seeds its
//! own [`shapesearch_core::ThresholdCell`]s with. It is
//! **required-but-nullable** (send `null` when nothing is proven yet) so
//! the option-vocabulary strictness below still applies to it. A shard's
//! `pruned_bound` is the largest §6.3 upper bound it pruned on the
//! hint's authority alone (null when every prune was locally proven):
//! the router verifies its merged top k strictly clears every reported
//! bound and recomputes hint-less otherwise, so a stale or poisoned hint
//! can never silently drop a true top-k result.
//!
//! Oversized batches are refused with a *structured* 400 so clients can
//! split and retry programmatically:
//! `{"error": …, "code": "batch_too_large", "max_batch": …, "batch_len": …}`.
//! A remote shard whose **every** replica failed likewise surfaces
//! structurally: `{"error": "shard unavailable after N replica
//! attempt(s): host:port (why); …", "code": "shard_unavailable",
//! "status": 502}` — every attempted replica is named with its failure
//! so an operator can read the full failover path, not just the last
//! stop.
//!
//! `"partial": true` opts a query into **degraded** results: when every
//! replica of a shard is dead, the response is still a 200 carrying the
//! merged results of the reachable shards plus a `degraded` block naming
//! the missing shard indices and their errors. Degraded responses are
//! **never cached** (the next identical query retries the dead shard)
//! and never silently exact — the block is always present on a partial
//! answer. Without the flag, an unreachable shard is the same 502 it
//! always was. `partial`, like `explain`, is not part of the cache key.
//!
//! The `/shard/query` options object serializes **every result-affecting
//! engine knob** explicitly (segmenter, binning, pushdown, all scoring
//! parameters, pruning configuration) and the receiving shard server
//! treats every field as required — a router and a shard server that
//! disagree about the option vocabulary fail loudly at the RPC boundary
//! instead of silently computing under different options. Scheduling
//! knobs (`parallel`, `parallel_threshold`) are deliberately *not* on
//! the wire: they never change results, and each process schedules its
//! own cores.

use crate::catalog::{DataSource, DatasetEntry, DatasetSpec, RegistryEntry, ShardEndpoints};
use crate::error::ServerError;
use crate::json::{obj, Json};
use shapesearch_core::{
    EngineOptions, PruningMode, PruningSnapshot, SegmenterKind, ShapeQuery, TopKResult,
};
use shapesearch_datastore::{Aggregation, CompareOp, Predicate, Value, VisualSpec};

/// Default upper bound on the number of queries one `POST /query` batch
/// may carry (configurable per server via `ServerConfig::max_batch` /
/// `shapesearch serve --max-batch`). Batches above the server's limit are
/// rejected with a structured 400: `{"error", "code": "batch_too_large",
/// "max_batch", "batch_len"}`. The bound keeps one request from pinning a
/// worker thread on an unbounded amount of engine work.
pub const MAX_BATCH_SIZE: usize = 64;

fn required_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ServerError> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ServerError::bad_request(format!("missing string field `{key}`")))
}

/// Parses a `POST /datasets` body.
pub fn dataset_spec_from_json(body: &Json) -> Result<DatasetSpec, ServerError> {
    let name = required_str(body, "name")?.to_owned();
    let id = body.get("id").and_then(Json::as_str).map(str::to_owned);

    let source = match (
        body.get("csv").and_then(Json::as_str),
        body.get("jsonl").and_then(Json::as_str),
        body.get("path").and_then(Json::as_str),
        body.get("snapshot").and_then(Json::as_str),
    ) {
        (Some(text), None, None, None) => DataSource::InlineCsv(text.to_owned()),
        (None, Some(text), None, None) => DataSource::InlineJsonl(text.to_owned()),
        (None, None, Some(path), None) => DataSource::Path(path.to_owned()),
        (None, None, None, Some(path)) => DataSource::Snapshot(path.to_owned()),
        _ => {
            return Err(ServerError::bad_request(
                "exactly one of `csv`, `jsonl`, `path`, or `snapshot` is required",
            ))
        }
    };

    // A snapshot carries post-GROUP state: EXTRACT never runs against
    // it, so the visual mapping — and `filters`/`agg`, which act during
    // extraction — was baked in when the snapshot was built. Rejecting
    // the keys (rather than ignoring them) keeps a client from
    // believing a filter it sent was applied.
    let snapshot_source = matches!(source, DataSource::Snapshot(_));
    if snapshot_source {
        for key in ["z", "x", "y", "filters", "agg"] {
            if body.get(key).is_some() {
                return Err(ServerError::bad_request(format!(
                    "`{key}` does not apply to a `snapshot` registration: the \
                     snapshot already contains extracted, grouped trendlines"
                )));
            }
        }
    }
    let mut visual = if snapshot_source {
        VisualSpec::new("z", "x", "y")
    } else {
        VisualSpec::new(
            required_str(body, "z")?,
            required_str(body, "x")?,
            required_str(body, "y")?,
        )
    };
    if let Some(filters) = body.get("filters").and_then(Json::as_array) {
        for f in filters {
            visual = visual.with_filter(predicate_from_json(f)?);
        }
    }
    if let Some(agg) = body.get("agg").and_then(Json::as_str) {
        let agg = Aggregation::parse(agg)
            .ok_or_else(|| ServerError::bad_request(format!("unknown aggregation `{agg}`")))?;
        visual = visual.with_aggregation(agg);
    }

    let shard_endpoints = match body.get("shard_endpoints") {
        None => None,
        Some(Json::Str(s)) if s.eq_ignore_ascii_case("registry") => {
            Some(ShardEndpoints::FromRegistry)
        }
        Some(Json::Arr(items)) => {
            let mut endpoints = Vec::with_capacity(items.len());
            for item in items {
                endpoints.push(match item {
                    Json::Null => None,
                    Json::Str(s) if s.eq_ignore_ascii_case("local") => None,
                    Json::Str(s) if !s.is_empty() => Some(vec![s.clone()]),
                    Json::Arr(replicas) => {
                        let mut list = Vec::with_capacity(replicas.len());
                        for replica in replicas {
                            match replica {
                                Json::Str(s)
                                    if !s.is_empty() && !s.eq_ignore_ascii_case("local") =>
                                {
                                    list.push(s.clone())
                                }
                                other => {
                                    return Err(ServerError::bad_request(format!(
                                        "replica entries must be \"host:port\" \
                                         strings; got {other:?} (use null at \
                                         the shard level for a local shard)"
                                    )))
                                }
                            }
                        }
                        if list.is_empty() {
                            return Err(ServerError::bad_request(
                                "a replica list must name at least one endpoint",
                            ));
                        }
                        Some(list)
                    }
                    other => {
                        return Err(ServerError::bad_request(format!(
                            "`shard_endpoints` entries must be \"host:port\", \
                             a replica array, \"local\", or null; got {other:?}"
                        )))
                    }
                });
            }
            if endpoints.is_empty() {
                return Err(ServerError::bad_request(
                    "`shard_endpoints` must name at least one shard",
                ));
            }
            Some(ShardEndpoints::Explicit(endpoints))
        }
        Some(_) => {
            return Err(ServerError::bad_request(
                "`shard_endpoints` must be an array of \"host:port\"/replica-\
                 array/null entries, or the string \"registry\"",
            ))
        }
    };

    let shard_of = match body.get("shard_of") {
        None => None,
        Some(Json::Str(text)) => Some(parse_shard_of(text).map_err(ServerError::bad_request)?),
        Some(_) => {
            return Err(ServerError::bad_request(
                "`shard_of` must be a string of the form \"index/total\"",
            ))
        }
    };

    Ok(DatasetSpec {
        id,
        name,
        source,
        visual,
        builtins: body.get("builtins").and_then(Json::as_bool).unwrap_or(true),
        shards: body.get("shards").and_then(Json::as_usize),
        shard_endpoints,
        shard_of,
    })
}

/// Parses a `"index/total"` shard-of designator (shared by the wire
/// protocol and the CLI's `--shard-of` flag).
///
/// # Errors
/// Malformed text, `total` of zero, or `index >= total`.
pub fn parse_shard_of(text: &str) -> Result<(usize, usize), String> {
    let parsed = text
        .split_once('/')
        .and_then(|(i, n)| Some((i.trim().parse().ok()?, n.trim().parse().ok()?)));
    match parsed {
        Some((_, 0)) => Err(format!("shard_of `{text}`: total must be at least 1")),
        Some((index, total)) if index >= total => Err(format!(
            "shard_of `{text}`: index {index} out of range for {total} shard(s)"
        )),
        Some(pair) => Ok(pair),
        None => Err(format!(
            "shard_of `{text}` is not of the form \"index/total\""
        )),
    }
}

fn predicate_from_json(f: &Json) -> Result<Predicate, ServerError> {
    let column = required_str(f, "column")?;
    let op = match required_str(f, "op")? {
        "=" | "==" | "eq" => CompareOp::Eq,
        "!=" | "ne" => CompareOp::Ne,
        "<" | "lt" => CompareOp::Lt,
        "<=" | "le" => CompareOp::Le,
        ">" | "gt" => CompareOp::Gt,
        ">=" | "ge" => CompareOp::Ge,
        other => {
            return Err(ServerError::bad_request(format!(
                "unknown filter op `{other}`"
            )))
        }
    };
    let value = match f.get("value") {
        Some(Json::Num(n)) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                Value::Int(*n as i64)
            } else {
                Value::Float(*n)
            }
        }
        Some(Json::Str(s)) => Value::infer(s),
        Some(Json::Bool(b)) => Value::Int(i64::from(*b)),
        Some(Json::Null) | None => Value::Null,
        Some(other) => {
            return Err(ServerError::bad_request(format!(
                "unsupported filter value {other:?}"
            )))
        }
    };
    Ok(Predicate::new(column, op, value))
}

/// The parsed body of one `POST /query` query object (a batch is an
/// array of these).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Id of the dataset to query.
    pub dataset: String,
    /// Regex-syntax query text, if given.
    pub query: Option<String>,
    /// Natural-language query text, if given (used when `query` absent).
    pub nl: Option<String>,
    /// Number of results requested (default 5).
    pub k: usize,
    /// Segmentation algorithm override.
    pub algo: Option<SegmenterKind>,
    /// GROUP binning-width override.
    pub bin_width: Option<usize>,
    /// Push-down optimization override.
    pub pushdown: Option<bool>,
    /// Engine viz-level parallelism override.
    pub parallel: Option<bool>,
    /// §6.3 bound-pruning mode override (`auto` / `off` / `force`).
    pub pruning: Option<PruningMode>,
    /// When `true`, the response envelope carries the request's trace:
    /// the stitched span tree (including remote shards' own timings)
    /// and pruning stats. Purely additive — it never affects results or
    /// caching, so `explain` is not part of the cache key.
    pub explain: bool,
    /// When `true`, the query opts into **degraded** results: a shard
    /// whose every replica is dead becomes a 200 with a `degraded`
    /// block instead of a 502. Degraded answers are never cached, so
    /// `partial` — a failure *policy*, not a result-affecting option —
    /// is not part of the cache key either.
    pub partial: bool,
}

/// Parses one query object of a `POST /query` body.
pub fn query_request_from_json(body: &Json) -> Result<QueryRequest, ServerError> {
    let dataset = required_str(body, "dataset")?.to_owned();
    let query = body.get("query").and_then(Json::as_str).map(str::to_owned);
    let nl = body.get("nl").and_then(Json::as_str).map(str::to_owned);
    if query.is_none() && nl.is_none() {
        return Err(ServerError::bad_request(
            "one of `query` or `nl` is required",
        ));
    }
    let algo = match body.get("algo").and_then(Json::as_str) {
        Some(name) => Some(
            SegmenterKind::parse(name)
                .ok_or_else(|| ServerError::bad_request(format!("unknown algo `{name}`")))?,
        ),
        None => None,
    };
    let pruning = match body.get("pruning").and_then(Json::as_str) {
        Some(name) => Some(PruningMode::parse(name).ok_or_else(|| {
            ServerError::bad_request(format!(
                "unknown pruning mode `{name}` (expected auto, off, or force)"
            ))
        })?),
        None => None,
    };
    Ok(QueryRequest {
        dataset,
        query,
        nl,
        k: body.get("k").and_then(Json::as_usize).unwrap_or(5),
        algo,
        bin_width: body.get("bin_width").and_then(Json::as_usize),
        pushdown: body.get("pushdown").and_then(Json::as_bool),
        parallel: body.get("parallel").and_then(Json::as_bool),
        pruning,
        explain: body.get("explain").and_then(Json::as_bool).unwrap_or(false),
        partial: body.get("partial").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// Parses a `POST /registry/heartbeat` body into
/// `(dataset, (shard index, total), endpoint)`.
///
/// # Errors
/// Missing fields or a malformed `shard_of` designator.
pub fn heartbeat_from_json(body: &Json) -> Result<(String, (usize, usize), String), ServerError> {
    let dataset = required_str(body, "dataset")?.to_owned();
    let shard_of =
        parse_shard_of(required_str(body, "shard_of")?).map_err(ServerError::bad_request)?;
    let endpoint = required_str(body, "endpoint")?.to_owned();
    Ok((dataset, shard_of, endpoint))
}

/// Serializes one registry row for `GET /registry`.
pub fn registry_entry_to_json(entry: &RegistryEntry) -> Json {
    obj([
        ("dataset", entry.dataset.as_str().into()),
        ("shard", entry.shard.into()),
        ("shards", entry.shards.into()),
        ("endpoint", entry.endpoint.as_str().into()),
        ("age_secs", entry.age_secs.into()),
        ("fresh", entry.fresh.into()),
    ])
}

impl QueryRequest {
    /// The effective engine options: the dataset defaults overridden by
    /// whatever the request pins down.
    pub fn effective_options(&self, defaults: &EngineOptions) -> EngineOptions {
        let mut options = defaults.clone();
        if let Some(algo) = self.algo {
            options.segmenter = algo;
        }
        if let Some(bin_width) = self.bin_width {
            options.bin_width = bin_width.max(1);
        }
        if let Some(pushdown) = self.pushdown {
            options.pushdown = pushdown;
        }
        if let Some(parallel) = self.parallel {
            options.parallel = parallel;
        }
        if let Some(pruning) = self.pruning {
            options.pruning_mode = pruning;
        }
        options
    }
}

/// Parses the request's query text into an AST (regex syntax first,
/// falling back to the NL pipeline when only `nl` was given). Returns
/// the AST plus any NL translation notes.
pub fn parse_query(request: &QueryRequest) -> Result<(ShapeQuery, Vec<String>), ServerError> {
    if let Some(text) = &request.query {
        let query = shapesearch_parser::parse_regex(text)
            .map_err(|e| ServerError::bad_request(format!("query parse error: {e}")))?;
        return Ok((query, Vec::new()));
    }
    let text = request.nl.as_deref().expect("validated at extraction");
    let parsed = shapesearch_parser::parse_natural_language(text)
        .map_err(|e| ServerError::bad_request(format!("natural-language parse error: {e}")))?;
    Ok((parsed.query, parsed.notes))
}

/// Serializes a catalog entry for listings and registration replies.
pub fn dataset_to_json(entry: &DatasetEntry) -> Json {
    let mut fields = vec![
        ("id", entry.id.as_str().into()),
        ("name", entry.name.as_str().into()),
        ("z", entry.visual.z.as_str().into()),
        ("x", entry.visual.x.as_str().into()),
        ("y", entry.visual.y.as_str().into()),
        ("trendlines", entry.trendline_count.into()),
        ("points", entry.point_count.into()),
        ("shards", entry.shard_count.into()),
        (
            "placement",
            Json::Arr(
                entry
                    .placement
                    .iter()
                    .map(|p| p.fingerprint().into())
                    .collect(),
            ),
        ),
    ];
    if let Some((index, total)) = entry.shard_of {
        fields.push(("shard_of", format!("{index}/{total}").into()));
    }
    if entry.snapshot.is_some() {
        fields.push(("snapshot", true.into()));
    }
    obj(fields)
}

/// Serializes a top-k answer as the wire `results` array.
pub fn results_to_json(results: &[TopKResult]) -> Json {
    Json::Arr(
        results
            .iter()
            .map(|r| {
                obj([
                    ("key", r.key.as_str().into()),
                    ("score", r.score.into()),
                    ("viz_index", r.viz_index.into()),
                    (
                        "ranges",
                        Json::Arr(
                            r.ranges
                                .iter()
                                .map(|&(s, e)| Json::Arr(vec![s.into(), e.into()]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Serializes an error as the wire `{"error": …}` object, with its
/// machine-readable `code` when it has one.
pub fn error_to_json(err: &ServerError) -> Json {
    let mut fields = vec![("error", Json::Str(err.message.clone()))];
    if let Some(code) = err.code {
        fields.push(("code", code.into()));
    }
    obj(fields)
}

/// Serializes an error as a batch-item / shard-outcome object:
/// `{"error", "status", "code"?}`.
pub fn error_item_to_json(err: &ServerError) -> Json {
    let mut fields = vec![
        ("error", Json::Str(err.message.clone())),
        ("status", u64::from(err.status).into()),
    ];
    if let Some(code) = err.code {
        fields.push(("code", code.into()));
    }
    obj(fields)
}

/// Deserializes a batch-item / shard-outcome error object. The code is
/// preserved when it is one this build knows (`shard_unavailable`), so a
/// router can relay a downstream shard server's structured error intact.
fn error_from_json(item: &Json) -> Option<ServerError> {
    let message = item.get("error")?.as_str()?.to_owned();
    let status = item.get("status")?.as_usize()? as u16;
    let code = match item.get("code").and_then(Json::as_str) {
        Some("shard_unavailable") => Some("shard_unavailable"),
        _ => None,
    };
    Some(ServerError {
        status,
        message,
        code,
    })
}

/// Serializes every result-affecting engine option for the
/// `/shard/query` RPC. Scheduling knobs are deliberately omitted (see
/// the module docs).
pub fn options_to_json(o: &EngineOptions) -> Json {
    obj([
        ("algo", o.segmenter.name().into()),
        ("bin_width", o.bin_width.into()),
        ("pushdown", o.pushdown.into()),
        (
            "params",
            obj([
                ("sharp_angle_deg", o.params.sharp_angle_deg.into()),
                ("gradual_angle_deg", o.params.gradual_angle_deg.into()),
                ("quantifier_threshold", o.params.quantifier_threshold.into()),
                (
                    "sketch_distance_scale",
                    o.params.sketch_distance_scale.into(),
                ),
                ("y_tolerance", o.params.y_tolerance.into()),
                ("min_width_frac", o.params.min_width_frac.into()),
            ]),
        ),
        (
            "pruning",
            obj([
                ("mode", o.pruning_mode.name().into()),
                ("sample_size", o.pruning.sample_size.into()),
            ]),
        ),
    ])
}

fn required_f64(body: &Json, key: &str) -> Result<f64, ServerError> {
    body.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ServerError::bad_request(format!("missing numeric field `{key}`")))
}

fn required_usize(body: &Json, key: &str) -> Result<usize, ServerError> {
    body.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ServerError::bad_request(format!("missing integer field `{key}`")))
}

/// Deserializes a `/shard/query` options object. Every field is
/// **required**: option-vocabulary skew between a router and a shard
/// server must fail the RPC, not silently fall back to a default that
/// would break distributed-vs-local byte identity.
///
/// # Errors
/// Missing or mistyped fields, unknown algorithm names.
pub fn options_from_json(body: &Json) -> Result<EngineOptions, ServerError> {
    let algo = required_str(body, "algo")?;
    let segmenter = SegmenterKind::parse(algo)
        .ok_or_else(|| ServerError::bad_request(format!("unknown algo `{algo}`")))?;
    let params = body
        .get("params")
        .ok_or_else(|| ServerError::bad_request("missing `params` object"))?;
    let pruning = body
        .get("pruning")
        .ok_or_else(|| ServerError::bad_request("missing `pruning` object"))?;
    let mut options = EngineOptions {
        segmenter,
        bin_width: required_usize(body, "bin_width")?.max(1),
        pushdown: body
            .get("pushdown")
            .and_then(Json::as_bool)
            .ok_or_else(|| ServerError::bad_request("missing boolean field `pushdown`"))?,
        ..EngineOptions::default()
    };
    options.params.sharp_angle_deg = required_f64(params, "sharp_angle_deg")?;
    options.params.gradual_angle_deg = required_f64(params, "gradual_angle_deg")?;
    options.params.quantifier_threshold = required_f64(params, "quantifier_threshold")?;
    options.params.sketch_distance_scale = required_f64(params, "sketch_distance_scale")?;
    options.params.y_tolerance = required_f64(params, "y_tolerance")?;
    options.params.min_width_frac = required_f64(params, "min_width_frac")?;
    let mode = required_str(pruning, "mode")?;
    options.pruning_mode = PruningMode::parse(mode)
        .ok_or_else(|| ServerError::bad_request(format!("unknown pruning mode `{mode}`")))?;
    options.pruning.sample_size = required_usize(pruning, "sample_size")?;
    Ok(options)
}

/// The parsed body of a `POST /shard/query` RPC.
pub struct ShardQueryRequest {
    /// Dataset id on the shard server (the router registers its shard
    /// servers under the same id it serves).
    pub dataset: String,
    /// The query group: canonical query text parsed back to ASTs, with
    /// each query's `k`.
    pub queries: Vec<(ShapeQuery, usize)>,
    /// Per-query `threshold_hint`s, aligned with `queries` (`None` =
    /// wire `null` = no hint).
    pub hints: Vec<Option<f64>>,
    /// The fully pinned, result-affecting engine options.
    pub options: EngineOptions,
    /// The router's trace ID, when the fan-out is being traced: the
    /// shard server reports its own span tree back under this ID so the
    /// router can stitch one cross-process trace.
    pub trace_id: Option<String>,
}

/// Builds the `POST /shard/query` request body the router sends for one
/// query group. `hints` must align with `queries`; a missing slot
/// serializes as the explicit `null`. A `trace` ID (present only when
/// the originating request is traced) asks the shard server to time its
/// stages and return its span tree in the reply.
pub fn shard_request_to_json(
    dataset: &str,
    queries: &[(ShapeQuery, usize)],
    hints: &[Option<f64>],
    options: &EngineOptions,
    trace: Option<&str>,
) -> Json {
    let mut fields = vec![
        ("dataset", Json::from(dataset)),
        (
            "queries",
            Json::Arr(
                queries
                    .iter()
                    .enumerate()
                    .map(|(i, (q, k))| {
                        obj([
                            ("query", q.to_string().into()),
                            ("k", (*k).into()),
                            (
                                "threshold_hint",
                                match hints.get(i).copied().flatten() {
                                    Some(hint) => hint.into(),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("options", options_to_json(options)),
    ];
    if let Some(trace) = trace {
        fields.push(("trace_id", trace.into()));
    }
    obj(fields)
}

/// Parses a `POST /shard/query` body. Every query entry must carry
/// `threshold_hint` explicitly (`null` for "no hint") — the same
/// fail-loudly rule the options object follows.
///
/// # Errors
/// Missing fields, unparseable query text, bad options.
pub fn shard_request_from_json(body: &Json) -> Result<ShardQueryRequest, ServerError> {
    let dataset = required_str(body, "dataset")?.to_owned();
    let items = body
        .get("queries")
        .and_then(Json::as_array)
        .ok_or_else(|| ServerError::bad_request("missing `queries` array"))?;
    if items.is_empty() {
        return Err(ServerError::bad_request(
            "`queries` must contain at least one entry",
        ));
    }
    let mut queries = Vec::with_capacity(items.len());
    let mut hints = Vec::with_capacity(items.len());
    for item in items {
        let text = required_str(item, "query")?;
        let query = shapesearch_parser::parse_regex(text)
            .map_err(|e| ServerError::bad_request(format!("query parse error: {e}")))?;
        let hint = match item.get("threshold_hint") {
            None => {
                return Err(ServerError::bad_request(
                    "missing `threshold_hint` (send null when nothing is proven)",
                ))
            }
            Some(Json::Null) => None,
            Some(value) => Some(value.as_f64().ok_or_else(|| {
                ServerError::bad_request("`threshold_hint` must be a number or null")
            })?),
        };
        queries.push((query, item.get("k").and_then(Json::as_usize).unwrap_or(5)));
        hints.push(hint);
    }
    let options = options_from_json(
        body.get("options")
            .ok_or_else(|| ServerError::bad_request("missing `options` object"))?,
    )?;
    let trace_id = match body.get("trace_id") {
        None | Some(Json::Null) => None,
        Some(value) => Some(
            value
                .as_str()
                .ok_or_else(|| ServerError::bad_request("`trace_id` must be a string"))?
                .to_owned(),
        ),
    };
    Ok(ShardQueryRequest {
        dataset,
        queries,
        hints,
        options,
        trace_id,
    })
}

/// Serializes the `/healthz` / shard-reply pruning counters block.
pub fn pruning_to_json(snapshot: PruningSnapshot) -> Json {
    obj([
        ("bounded", snapshot.bounded.into()),
        ("pruned", snapshot.pruned.into()),
        ("scored", snapshot.scored.into()),
        ("bound_micros", snapshot.bound_micros.into()),
    ])
}

/// Serializes a shard server's per-query outcomes as the
/// `POST /shard/query` response body. `pruned_bounds` aligns with
/// `outcomes`: the largest upper bound each query pruned on hint
/// authority alone (`None` → wire `null`), which the router's
/// verification pass checks the merged answer against. `pruning` is the
/// RPC's engine-side counter snapshot. `spans` (present only when the
/// request carried a `trace_id`) is the shard server's own span tree,
/// which the router stitches under its RPC span.
pub fn shard_outcomes_to_json(
    dataset: &str,
    outcomes: &[Result<Vec<TopKResult>, ServerError>],
    pruned_bounds: &[Option<f64>],
    pruning: PruningSnapshot,
    micros: u64,
    spans: Option<&[crate::obs::Span]>,
) -> Json {
    let mut fields = vec![
        ("dataset", Json::from(dataset)),
        (
            "outcomes",
            Json::Arr(
                outcomes
                    .iter()
                    .enumerate()
                    .map(|(i, outcome)| match outcome {
                        Ok(results) => obj([
                            ("results", results_to_json(results)),
                            (
                                "pruned_bound",
                                match pruned_bounds.get(i).copied().flatten() {
                                    Some(bound) => bound.into(),
                                    None => Json::Null,
                                },
                            ),
                        ]),
                        Err(e) => error_item_to_json(e),
                    })
                    .collect(),
            ),
        ),
        ("pruning", pruning_to_json(pruning)),
        ("micros", micros.into()),
    ];
    if let Some(spans) = spans {
        fields.push(("spans", crate::obs::spans_to_json(spans)));
    }
    obj(fields)
}

/// A shard server's parsed `POST /shard/query` reply: per-query partial
/// outcomes plus the per-query hint-pruned bounds the router must verify
/// its merged answer against.
pub struct ShardPartials {
    /// Per-query partial top-k results (or structured per-query errors).
    pub outcomes: Vec<Result<Vec<TopKResult>, ServerError>>,
    /// Per-query largest hint-justified pruned upper bound, when any.
    pub pruned_bounds: Vec<Option<f64>>,
    /// The shard server's own span tree (empty unless the router sent a
    /// `trace_id` and the reply carried well-formed spans).
    pub spans: Vec<crate::obs::Span>,
}

/// Parses a shard server's `POST /shard/query` response back into
/// per-query outcomes. `expected` is the number of queries the router
/// sent; a reply with any other outcome count is malformed.
///
/// # Errors
/// A human-readable description of what was malformed (the caller wraps
/// it into a `shard_unavailable` naming the endpoint).
pub fn shard_outcomes_from_json(body: &Json, expected: usize) -> Result<ShardPartials, String> {
    let items = body
        .get("outcomes")
        .and_then(Json::as_array)
        .ok_or("reply carried no `outcomes` array")?;
    if items.len() != expected {
        return Err(format!(
            "reply carried {} outcomes for {expected} queries",
            items.len()
        ));
    }
    let mut outcomes = Vec::with_capacity(items.len());
    let mut pruned_bounds = Vec::with_capacity(items.len());
    for item in items {
        if let Some(results) = item.get("results") {
            outcomes.push(Ok(results_from_json(results)?));
            pruned_bounds.push(item.get("pruned_bound").and_then(Json::as_f64));
            continue;
        }
        let err = error_from_json(item)
            .ok_or("outcome carried neither `results` nor a structured error")?;
        outcomes.push(Err(err));
        pruned_bounds.push(None);
    }
    let spans = body
        .get("spans")
        .and_then(crate::obs::spans_from_json)
        .unwrap_or_default();
    Ok(ShardPartials {
        outcomes,
        pruned_bounds,
        spans,
    })
}

/// Deserializes a wire `results` array back into [`TopKResult`]s (the
/// inverse of [`results_to_json`]; the merge step needs typed values).
///
/// # Errors
/// A description of the malformed element.
pub fn results_from_json(results: &Json) -> Result<Vec<TopKResult>, String> {
    let items = results.as_array().ok_or("`results` is not an array")?;
    items
        .iter()
        .map(|r| {
            let key = r
                .get("key")
                .and_then(Json::as_str)
                .ok_or("result without `key`")?
                .to_owned();
            let score = r
                .get("score")
                .and_then(Json::as_f64)
                .ok_or("result without `score`")?;
            let viz_index = r
                .get("viz_index")
                .and_then(Json::as_usize)
                .ok_or("result without `viz_index`")?;
            let ranges = r
                .get("ranges")
                .and_then(Json::as_array)
                .ok_or("result without `ranges`")?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array().filter(|p| p.len() == 2)?;
                    Some((pair[0].as_usize()?, pair[1].as_usize()?))
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed `ranges` pair")?;
            Ok(TopKResult {
                key,
                score,
                viz_index,
                ranges,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn dataset_spec_parses_inline_csv() {
        let body = json::parse(
            r#"{"name":"sales","id":"s1","csv":"z,x,y\na,1,2\n","z":"z","x":"x","y":"y",
                "filters":[{"column":"y","op":">","value":1}],"agg":"sum"}"#,
        )
        .unwrap();
        let spec = dataset_spec_from_json(&body).unwrap();
        assert_eq!(spec.id.as_deref(), Some("s1"));
        assert_eq!(spec.visual.filters.len(), 1);
        assert_eq!(spec.visual.aggregation, Aggregation::Sum);
        assert!(matches!(spec.source, DataSource::InlineCsv(_)));
    }

    #[test]
    fn dataset_spec_rejects_ambiguous_source() {
        let body =
            json::parse(r#"{"name":"x","csv":"a","path":"b","z":"z","x":"x","y":"y"}"#).unwrap();
        assert!(dataset_spec_from_json(&body).is_err());
    }

    #[test]
    fn query_request_parses_and_overrides_options() {
        let body = json::parse(
            r#"{"dataset":"s1","query":"[p=up]","k":3,"algo":"dp","bin_width":2,"pushdown":false}"#,
        )
        .unwrap();
        let req = query_request_from_json(&body).unwrap();
        assert_eq!(req.k, 3);
        let options = req.effective_options(&EngineOptions::default());
        assert_eq!(options.segmenter, SegmenterKind::Dp);
        assert_eq!(options.bin_width, 2);
        assert!(!options.pushdown);
    }

    #[test]
    fn query_request_requires_some_query() {
        let body = json::parse(r#"{"dataset":"s1","k":3}"#).unwrap();
        assert!(query_request_from_json(&body).is_err());
        let body = json::parse(r#"{"dataset":"s1","algo":"warp"}"#).unwrap();
        assert!(query_request_from_json(&body).is_err());
    }

    #[test]
    fn dataset_spec_parses_shard_endpoints_and_shard_of() {
        let body = json::parse(
            r#"{"name":"s","csv":"z,x,y\na,1,2\n","z":"z","x":"x","y":"y",
                "shard_endpoints":["127.0.0.1:9001",null,"local","127.0.0.1:9002"]}"#,
        )
        .unwrap();
        let spec = dataset_spec_from_json(&body).unwrap();
        assert_eq!(
            spec.shard_endpoints,
            Some(ShardEndpoints::Explicit(vec![
                Some(vec!["127.0.0.1:9001".into()]),
                None,
                None,
                Some(vec!["127.0.0.1:9002".into()])
            ])),
            "bare endpoint strings stay the singleton-replica shorthand"
        );

        // A replica array per shard is the N-way form; the "registry"
        // sentinel defers placement to heartbeats.
        let body = json::parse(
            r#"{"name":"s","csv":"z,x,y\na,1,2\n","z":"z","x":"x","y":"y",
                "shard_endpoints":[["h1:1","h2:2"],null]}"#,
        )
        .unwrap();
        assert_eq!(
            dataset_spec_from_json(&body).unwrap().shard_endpoints,
            Some(ShardEndpoints::Explicit(vec![
                Some(vec!["h1:1".into(), "h2:2".into()]),
                None
            ]))
        );
        let body = json::parse(
            r#"{"name":"s","csv":"z,x,y\na,1,2\n","z":"z","x":"x","y":"y",
                "shard_endpoints":"registry"}"#,
        )
        .unwrap();
        assert_eq!(
            dataset_spec_from_json(&body).unwrap().shard_endpoints,
            Some(ShardEndpoints::FromRegistry)
        );

        let body = json::parse(
            r#"{"name":"s","csv":"z,x,y\na,1,2\n","z":"z","x":"x","y":"y","shard_of":"1/4"}"#,
        )
        .unwrap();
        assert_eq!(
            dataset_spec_from_json(&body).unwrap().shard_of,
            Some((1, 4))
        );

        for bad in [
            r#""shard_endpoints":[]"#,
            r#""shard_endpoints":[7]"#,
            r#""shard_endpoints":"x:1""#,
            r#""shard_endpoints":[[]]"#,
            r#""shard_endpoints":[["h:1",null]]"#,
            r#""shard_endpoints":[["h:1","local"],null]"#,
            r#""shard_of":"4/4""#,
            r#""shard_of":"1-4""#,
            r#""shard_of":"1/0""#,
            r#""shard_of":7"#,
        ] {
            let body = json::parse(&format!(
                r#"{{"name":"s","csv":"a","z":"z","x":"x","y":"y",{bad}}}"#
            ))
            .unwrap();
            assert!(dataset_spec_from_json(&body).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn engine_options_round_trip_the_shard_wire() {
        let mut options = EngineOptions {
            segmenter: SegmenterKind::Dp,
            bin_width: 3,
            pushdown: false,
            ..EngineOptions::default()
        };
        options.params.min_width_frac = 0.125;
        options.pruning_mode = PruningMode::Force;
        options.pruning.sample_size = 24;
        let wire = json::parse(&options_to_json(&options).to_text()).unwrap();
        let back = options_from_json(&wire).unwrap();
        assert_eq!(back.segmenter, options.segmenter);
        assert_eq!(back.bin_width, options.bin_width);
        assert_eq!(back.pushdown, options.pushdown);
        assert_eq!(back.params, options.params);
        assert_eq!(back.pruning_mode, options.pruning_mode);
        assert_eq!(back.pruning, options.pruning);
        // Option-vocabulary skew fails loudly: a missing result-affecting
        // field is an error, never a silent default.
        let Json::Obj(mut fields) = wire.clone() else {
            panic!("options serialize as an object")
        };
        fields.retain(|(k, _)| k != "params");
        assert!(options_from_json(&Json::Obj(fields)).is_err());
        let mut crippled = wire;
        if let Some(Json::Obj(params)) = crippled.get("params").cloned() {
            let mut params: Vec<_> = params;
            params.retain(|(k, _)| k != "min_width_frac");
            if let Json::Obj(fields) = &mut crippled {
                for (k, v) in fields.iter_mut() {
                    if k == "params" {
                        *v = Json::Obj(params.clone());
                    }
                }
            }
        }
        assert!(options_from_json(&crippled).is_err());
    }

    #[test]
    fn shard_request_and_outcomes_round_trip() {
        let q = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        let queries = vec![(q.clone(), 3), (q, 7)];
        let hints = vec![Some(0.625), None];
        let wire =
            shard_request_to_json("sales", &queries, &hints, &EngineOptions::default(), None);
        let req = shard_request_from_json(&json::parse(&wire.to_text()).unwrap()).unwrap();
        assert_eq!(req.dataset, "sales");
        assert_eq!(req.queries.len(), 2);
        assert_eq!(req.queries[0].1, 3);
        assert_eq!(req.queries[1].1, 7);
        assert_eq!(req.queries[0].0, queries[0].0);
        assert_eq!(req.hints, hints, "hints round-trip, null included");
        assert_eq!(req.trace_id, None, "untraced requests omit trace_id");

        // A traced fan-out carries its ID to the shard server.
        let traced = shard_request_to_json(
            "sales",
            &queries,
            &hints,
            &EngineOptions::default(),
            Some("deadbeef01234567"),
        );
        let req = shard_request_from_json(&json::parse(&traced.to_text()).unwrap()).unwrap();
        assert_eq!(req.trace_id.as_deref(), Some("deadbeef01234567"));

        // `threshold_hint` is required-but-nullable: dropping the key is
        // a malformed request, like any option-vocabulary skew.
        let stripped = wire.to_text().replace(",\"threshold_hint\":0.625", "");
        assert!(shard_request_from_json(&json::parse(&stripped).unwrap()).is_err());

        let results = vec![TopKResult {
            key: "widget".into(),
            score: 0.875,
            viz_index: 4,
            ranges: vec![(0, 3), (3, 9)],
        }];
        let outcomes: Vec<Result<Vec<TopKResult>, ServerError>> = vec![
            Ok(results.clone()),
            Err(ServerError::shard_unavailable("10.0.0.9:7878", "boom")),
        ];
        let snapshot = PruningSnapshot {
            bounded: 9,
            pruned: 7,
            scored: 2,
            bound_micros: 11,
        };
        let reply =
            shard_outcomes_to_json("sales", &outcomes, &[Some(0.5), None], snapshot, 42, None);
        assert!(reply.to_text().contains("\"pruning\":{\"bounded\":9"));
        assert!(
            !reply.to_text().contains("\"spans\""),
            "untraced replies omit spans"
        );
        let back = shard_outcomes_from_json(&json::parse(&reply.to_text()).unwrap(), 2).unwrap();
        assert_eq!(back.outcomes[0].as_ref().unwrap(), &results);
        assert_eq!(back.pruned_bounds, vec![Some(0.5), None]);
        assert!(back.spans.is_empty());

        // A traced reply round-trips its span tree for router stitching.
        let shard_spans =
            vec![crate::obs::Span::new("shard_request", 42).with_detail("trace deadbeef01234567")];
        let traced = shard_outcomes_to_json(
            "sales",
            &outcomes,
            &[Some(0.5), None],
            snapshot,
            42,
            Some(&shard_spans),
        );
        let back = shard_outcomes_from_json(&json::parse(&traced.to_text()).unwrap(), 2).unwrap();
        assert_eq!(back.spans, shard_spans);
        let err = back.outcomes[1].as_ref().unwrap_err();
        assert_eq!(err.status, 502);
        assert_eq!(err.code, Some("shard_unavailable"));
        assert!(err.message.contains("10.0.0.9:7878"));
        // Outcome-count mismatches are malformed replies.
        assert!(shard_outcomes_from_json(&json::parse(&reply.to_text()).unwrap(), 3).is_err());
    }

    #[test]
    fn results_round_trip_bytes_exactly() {
        // The distributed invariant hinges on serialize→parse→serialize
        // being the identity on result payloads, scores included.
        let results = vec![
            TopKResult {
                key: "a".into(),
                score: 0.123456789012345,
                viz_index: 0,
                ranges: vec![(0, 17)],
            },
            TopKResult {
                key: "b".into(),
                score: -1.0,
                viz_index: 3,
                ranges: vec![(2, 5), (5, 11)],
            },
            TopKResult {
                key: "c".into(),
                score: 1.0 / 3.0,
                viz_index: 9,
                ranges: vec![],
            },
        ];
        let text = results_to_json(&results).to_text();
        let back = results_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, results);
        assert_eq!(results_to_json(&back).to_text(), text);
    }

    #[test]
    fn error_json_carries_machine_readable_code() {
        let err = ServerError::shard_unavailable("h:1", "connect refused");
        assert!(error_to_json(&err)
            .to_text()
            .contains("\"code\":\"shard_unavailable\""));
        let item = error_item_to_json(&err);
        assert_eq!(item.get("status").unwrap().as_usize(), Some(502));
        assert_eq!(
            item.get("code").unwrap().as_str(),
            Some("shard_unavailable")
        );
        // Plain errors stay code-less.
        assert!(error_to_json(&ServerError::bad_request("x"))
            .get("code")
            .is_none());

        // An all-replicas failure names every attempt in try order, and
        // keeps the same machine-readable code so routers relay it.
        let err = ServerError::replicas_unavailable([
            ("h1:1", "connect refused"),
            ("h2:2", "status 500: boom"),
        ]);
        assert_eq!(err.status, 502);
        assert_eq!(err.code, Some("shard_unavailable"));
        assert!(err.message.contains("2 replica attempt(s)"), "{err}");
        assert!(err.message.contains("h1:1 (connect refused)"), "{err}");
        assert!(err.message.contains("h2:2 (status 500: boom)"), "{err}");
    }

    #[test]
    fn heartbeat_and_registry_rows_round_the_wire() {
        let body =
            json::parse(r#"{"dataset":"sales","shard_of":"1/4","endpoint":"10.0.0.2:7001"}"#)
                .unwrap();
        assert_eq!(
            heartbeat_from_json(&body).unwrap(),
            ("sales".to_owned(), (1, 4), "10.0.0.2:7001".to_owned())
        );
        for bad in [
            r#"{"shard_of":"1/4","endpoint":"e:1"}"#,
            r#"{"dataset":"d","shard_of":"4/4","endpoint":"e:1"}"#,
            r#"{"dataset":"d","shard_of":"1/4"}"#,
        ] {
            assert!(heartbeat_from_json(&json::parse(bad).unwrap()).is_err());
        }
        let row = registry_entry_to_json(&RegistryEntry {
            dataset: "sales".into(),
            shard: 1,
            shards: 4,
            endpoint: "10.0.0.2:7001".into(),
            age_secs: 3,
            fresh: true,
        });
        assert_eq!(
            row.to_text(),
            r#"{"dataset":"sales","shard":1,"shards":4,"endpoint":"10.0.0.2:7001","age_secs":3,"fresh":true}"#
        );
    }

    #[test]
    fn partial_flag_parses_and_defaults_off() {
        let body = json::parse(r#"{"dataset":"d","query":"[p=up]"}"#).unwrap();
        assert!(!query_request_from_json(&body).unwrap().partial);
        let body = json::parse(r#"{"dataset":"d","query":"[p=up]","partial":true}"#).unwrap();
        assert!(query_request_from_json(&body).unwrap().partial);
    }

    #[test]
    fn nl_and_regex_share_canonical_ast() {
        let nl_req = QueryRequest {
            dataset: "d".into(),
            query: None,
            nl: Some("rising then falling".into()),
            k: 5,
            algo: None,
            bin_width: None,
            pushdown: None,
            parallel: None,
            pruning: None,
            explain: false,
            partial: false,
        };
        let (nl_query, _) = parse_query(&nl_req).unwrap();
        let direct = shapesearch_parser::parse_regex(&nl_query.to_string()).unwrap();
        assert_eq!(nl_query, direct, "canonical text must reparse identically");
    }
}
