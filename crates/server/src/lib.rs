//! # shapesearch-server
//!
//! The concurrent ShapeSearch query service (the system of paper
//! Figure 2, productionized): a long-running process that registers
//! datasets once, keeps their extracted trendlines hot behind `Arc`, and
//! serves ShapeQueries over a std-only HTTP/1.1 JSON protocol from a
//! fixed worker pool, with an LRU query-result cache in front of the
//! segmentation engine.
//!
//! Architecture (one module per box; `docs/ARCHITECTURE.md` at the repo
//! root walks the full request lifecycle):
//!
//! ```text
//!        TcpListener ─► event loops (http) ─► dispatch ─► route (handlers)
//!                       (epoll readiness)     (CPU tier)         │
//!                    ┌──────────────┬───────────────┼──────────────┐
//!                    ▼              ▼               ▼              ▼
//!              Catalog (catalog)  QueryCache    protocol/json  ComputePool
//!                    │            (cache: LRU +                (compute:
//!                    ▼             singleflight)                shard tasks)
//!          Arc<DatasetEntry> { ShardedEngine, VisualSpec, … }
//!                    │
//!                    ▼
//!          shards: [Arc<ShapeEngine>; N]  ── fan out per query, merge
//! ```
//!
//! * Registration (`POST /datasets`) runs EXTRACT eagerly and partitions
//!   the trendlines into size-balanced engine shards; queries never
//!   touch raw tables.
//! * Every computation fans out as one compute-pool task per shard and
//!   merges the per-shard top-k partials deterministically — results are
//!   byte-identical for every shard count, one query can use every core,
//!   and large batches interleave fairly with other requests.
//! * Shards can live in **other server processes**: a registration's
//!   partition map ([`catalog::ShardPlacement`], set via
//!   `"shard_endpoints"` / `--shard-endpoint`) routes remote shards over
//!   a pooled HTTP client to shard servers (`serve --shard-of I/N`,
//!   answering `POST /shard/query` with partials), merged by the same
//!   contract — distributed results stay byte-identical to
//!   single-process ones, and an unreachable shard degrades to a
//!   structured `shard_unavailable` error instead of a silent partial
//!   top-k (`docs/ARCHITECTURE.md`, "Distributed topology").
//! * `POST /query` accepts one query object **or an array of them**
//!   (regex or natural-language, any segmentation algorithm, per-request
//!   engine overrides). A batch is deduplicated through the singleflight
//!   cache and its misses are executed over **one pass** of each
//!   dataset's trendline collection
//!   ([`shapesearch_core::ShapeEngine::top_k_batch`]); batches above the
//!   configured `max_batch` get a structured `batch_too_large` 400.
//! * Results are cached under the **normalized query AST**, so textual
//!   variants of one query share an entry, and concurrent identical
//!   misses coalesce onto one computation (the singleflight latch in
//!   [`cache`]).
//! * `GET /healthz` exposes hit/miss/coalesced counters for
//!   observability.
//!
//! ## Quickstart
//!
//! ```
//! use shapesearch_server::{json, Client, ServerConfig};
//!
//! let handle = shapesearch_server::serve("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let client = Client::new(handle.addr());
//! client
//!     .post("/datasets", &json::parse(r#"{
//!         "name": "sales", "id": "sales",
//!         "csv": "product,week,sales\nwidget,1,1\nwidget,2,3\nwidget,3,2\n",
//!         "z": "product", "x": "week", "y": "sales"
//!     }"#).unwrap())
//!     .unwrap()
//!     .expect_ok("register");
//! let reply = client
//!     .post("/query", &json::parse(
//!         r#"{"dataset":"sales","query":"[p=up][p=down]","k":1}"#
//!     ).unwrap())
//!     .unwrap()
//!     .expect_ok("query");
//! assert_eq!(
//!     reply.get("results").unwrap().as_array().unwrap()[0]
//!         .get("key").unwrap().as_str(),
//!     Some("widget")
//! );
//! handle.shutdown();
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod chaos;
pub mod client;
pub mod compute;
pub mod error;
pub mod handlers;
pub mod http;
pub mod json;
pub mod obs;
pub mod protocol;
pub mod resident;

pub use cache::{CacheKey, CacheStats, LruCache, QueryCache};
pub use catalog::{Catalog, DataSource, DatasetEntry, DatasetSpec, ShardPlacement};
pub use chaos::{ChaosMode, ChaosProxy};
pub use client::{Client, ClientConfig, ClientResponse, PooledClient};
pub use error::ServerError;
pub use handlers::AppState;
pub use http::{ConnStats, HttpConfig, Request, Response, ServerHandle};
pub use obs::{Histogram, HistogramSnapshot, Metrics, Span, Stage};
pub use resident::{ResidentShards, ResidentStats};

use std::io;
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Dispatch (CPU tier) threads running request handlers, and the
    /// compute pool's size (defaults to the machine's available
    /// parallelism). Socket I/O is handled separately by
    /// `event_threads` readiness loops.
    pub workers: usize,
    /// Query-result cache capacity in entries.
    pub cache_capacity: usize,
    /// Maximum number of queries a single `POST /query` batch may carry
    /// (defaults to [`protocol::MAX_BATCH_SIZE`]); oversized batches get
    /// a structured `batch_too_large` 400.
    pub max_batch: usize,
    /// Engine shards per registered dataset, unless a registration pins
    /// its own count. `0` (the default) means auto: the machine's
    /// available parallelism. Always capped by each dataset's collection
    /// size. Sharded execution returns results identical to `1` for
    /// every value — this knob trades registration-time partitioning for
    /// query-time fan-out across the compute pool.
    pub shards: usize,
    /// Directory that `POST /datasets` `path` sources must live under;
    /// `None` (the default) disables path registration over HTTP so
    /// remote clients cannot read arbitrary server-local files.
    pub data_root: Option<std::path::PathBuf>,
    /// `POST /query` requests slower than this many microseconds emit a
    /// structured `slow-query` line (with the trace ID) on stderr; `0`
    /// (the default) disables slow-query logging.
    pub slow_query_micros: u64,
    /// Connect timeout (milliseconds) of the remote-shard RPC client
    /// (`--shard-connect-timeout-ms`). Bounds how long ONE connect
    /// attempt to one replica may take before failover moves on.
    pub shard_connect_timeout_ms: u64,
    /// I/O (read/write) timeout in milliseconds of the remote-shard RPC
    /// client (`--shard-io-timeout-ms`). Bounds how long a black-holed
    /// replica — accepting connections but never answering — can stall a
    /// fan-out before failover moves on.
    pub shard_io_timeout_ms: u64,
    /// Extra connect attempts per replica endpoint after the first
    /// fails (`--shard-retries`): `1` (the default) retries a refused
    /// connect once — riding out a shard server restarting — before the
    /// endpoint counts as failed and failover tries the next replica.
    pub shard_retries: u32,
    /// Maximum snapshot shards resident in memory at once
    /// (`--resident-shards`). Snapshot-registered datasets materialize
    /// shards lazily on first touch and evict least-recently-used ones
    /// over this cap; `0` (the default) means unlimited.
    pub resident_shards: usize,
    /// Byte budget for resident snapshot shards (`--resident-bytes`):
    /// the sum of every resident shard's columnar-arena byte size.
    /// Eviction runs least-recently-used while over budget (alongside
    /// the `resident_shards` count cap); `0` (the default) means
    /// unlimited. At least one shard always stays resident, so a single
    /// shard larger than the budget still serves.
    pub resident_bytes: u64,
    /// Readiness event-loop threads of the evented HTTP core
    /// (`--event-threads`). `0` (the default) means auto: the machine's
    /// available parallelism. Event loops only do socket I/O — `workers`
    /// sizes the dispatch (CPU) tier that runs the handlers.
    pub event_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let client = client::ClientConfig::default();
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_capacity: 256,
            max_batch: protocol::MAX_BATCH_SIZE,
            shards: 0,
            data_root: None,
            slow_query_micros: 0,
            shard_connect_timeout_ms: client.connect_timeout.as_millis() as u64,
            shard_io_timeout_ms: client.io_timeout.as_millis() as u64,
            shard_retries: client.retries,
            resident_shards: 0,
            resident_bytes: 0,
            event_threads: 0,
        }
    }
}

/// A running ShapeSearch service: the HTTP handle plus its shared state
/// (exposed so embedders — e.g. the CLI's `serve` subcommand — can
/// preregister datasets without going through HTTP).
pub struct Service {
    handle: ServerHandle,
    state: Arc<AppState>,
}

impl Service {
    /// The local address the service is listening on (useful with
    /// ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.handle.addr()
    }

    /// The shared application state (catalog, cache, counters) — lets
    /// embedders preregister datasets without an HTTP round trip.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stops accepting, drains in-flight requests, and joins all threads.
    pub fn shutdown(self) {
        self.handle.shutdown();
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
///
/// # Errors
/// Propagates bind failures.
pub fn serve(addr: &str, config: ServerConfig) -> io::Result<Service> {
    let mut state = AppState::new(
        config.cache_capacity,
        config.workers,
        config.data_root.clone(),
        config.shards,
    );
    state.max_batch = config.max_batch.max(1);
    state.slow_query_micros = config.slow_query_micros;
    state.catalog.set_resident_capacity(config.resident_shards);
    state
        .catalog
        .set_resident_capacity_bytes(config.resident_bytes);
    state.remote = PooledClient::with_config(client::ClientConfig {
        connect_timeout: std::time::Duration::from_millis(config.shard_connect_timeout_ms.max(1)),
        io_timeout: std::time::Duration::from_millis(config.shard_io_timeout_ms.max(1)),
        retries: config.shard_retries,
        ..client::ClientConfig::default()
    });
    let state = Arc::new(state);
    let router_state = Arc::clone(&state);
    let handle = http::serve(
        addr,
        http::HttpConfig {
            event_threads: config.event_threads,
            dispatch_threads: config.workers,
            stats: Arc::clone(&state.conn_stats),
        },
        Arc::new(move |request| handlers::route(&router_state, request)),
    )?;
    Ok(Service { handle, state })
}
