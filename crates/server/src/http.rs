//! A std-only HTTP/1.1 server: `TcpListener` accept loop feeding a fixed
//! worker pool over an mpsc channel. No async runtime, no external
//! dependencies — the concurrency model is N worker threads each owning
//! one connection at a time, which is exactly right for a CPU-bound
//! query engine (segmentation dominates; socket I/O is a rounding error).
//!
//! The layer is application-agnostic: it parses requests, hands them to a
//! router closure, and writes responses (with keep-alive support).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Request bodies larger than this are rejected (inline dataset uploads
/// are the biggest legitimate payload).
const MAX_BODY: usize = 64 * 1024 * 1024;
const MAX_HEADERS: usize = 100;
/// Request-line / header-line length cap: a peer streaming bytes with no
/// newline must not grow a worker's buffer without bound.
const MAX_LINE: usize = 64 * 1024;
/// Socket read timeout. Blocked workers recheck the shutdown flag at
/// this cadence, bounding how long `ServerHandle::shutdown` can take
/// even while clients hold idle keep-alive connections open.
const READ_TICK: Duration = Duration::from_millis(200);
/// How long a worker waits for the *next* request on a keep-alive
/// connection before closing it. Each worker owns one connection at a
/// time, so without this deadline `workers` idle clients would starve
/// the entire pool. (Shorter under `cfg(test)` so the suite can observe
/// the behavior without multi-second sleeps.)
#[cfg(not(test))]
const IDLE_TIMEOUT: Duration = Duration::from_secs(10);
#[cfg(test)]
const IDLE_TIMEOUT: Duration = Duration::from_secs(1);

/// Once a request's first byte has arrived, the whole request (line,
/// headers, body) must complete within this budget — otherwise a
/// slow-loris peer dribbling one byte per tick would hold a worker
/// forever.
#[cfg(not(test))]
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);
#[cfg(test)]
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// Request target, including any query string.
    pub path: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// An HTTP response to be written back.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body text.
    pub body: String,
    /// `content-type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// An `application/json` response with the given status and body.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
        }
    }

    /// A Prometheus text-exposition response (the `version=0.0.4`
    /// content type scrapers negotiate on).
    pub fn metrics_text(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        _ => "Unknown",
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one `\n`-terminated line of at most `MAX_LINE` bytes, retrying
/// across read timeouts until `stop` is raised, the hard deadline
/// passes, or — if `idle_deadline` is set and nothing has been received
/// yet — the idle deadline passes. `Ok(None)` means the wait was ended
/// by one of those, and the connection should close.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    stop: &AtomicBool,
    idle_deadline: Option<std::time::Instant>,
    hard_deadline: std::time::Instant,
) -> io::Result<Option<usize>> {
    loop {
        let remaining = (MAX_LINE.saturating_sub(buf.len())) as u64;
        if remaining == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
        }
        // `take` caps this attempt; partial reads before a timeout stay
        // appended to `buf`, so retrying continues the same line.
        match (&mut *reader).take(remaining).read_line(buf) {
            // EOF: report what was read; an empty buf means a clean
            // close, a partial line parses (and fails) downstream.
            Ok(0) => return Ok(Some(buf.len())),
            Ok(_) if !buf.ends_with('\n') && buf.len() >= MAX_LINE => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
            }
            Ok(_) if !buf.ends_with('\n') => {
                // The `take` cap split the line; keep reading it.
                continue;
            }
            Ok(_) => return Ok(Some(buf.len())),
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                let now = std::time::Instant::now();
                if now >= hard_deadline {
                    return Ok(None);
                }
                if let Some(deadline) = idle_deadline {
                    if buf.is_empty() && now >= deadline {
                        return Ok(None);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads one request. `Ok(None)` means the peer closed cleanly between
/// requests (normal keep-alive shutdown), the idle deadline expired, or
/// a server shutdown was requested while waiting.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
) -> io::Result<Option<(Request, bool)>> {
    let mut line = String::new();
    // The wait for the first byte is idle time; after that the whole
    // request must complete within the hard deadline.
    let started = std::time::Instant::now();
    let idle_deadline = Some(started + IDLE_TIMEOUT);
    let hard_deadline = started + IDLE_TIMEOUT + REQUEST_TIMEOUT;
    match read_line_bounded(reader, &mut line, stop, idle_deadline, hard_deadline)? {
        None | Some(0) => return Ok(None),
        Some(_) => {}
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    // HTTP/1.0 (and unknown versions) default to connection-close
    // framing; only HTTP/1.1 defaults to keep-alive.
    let http11 = parts.next() == Some("HTTP/1.1");

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        match read_line_bounded(reader, &mut h, stop, None, hard_deadline)? {
            None => return Ok(None),
            Some(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ))
            }
            Some(_) => {}
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_owned(), v.trim().to_owned()));
        }
    }

    // Chunked bodies are not implemented; treating them as body-less
    // would misparse the chunk stream as pipelined requests, so refuse
    // outright (the connection closes after the error response).
    if headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("transfer-encoding"))
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "transfer-encoding is not supported; send a content-length body",
        ));
    }
    // An unparseable Content-Length must be an error, not 0: defaulting
    // would leave the body in the buffer to be misread as the next
    // pipelined request.
    let content_length = match headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v.parse::<usize>().map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid content-length `{v}`"),
            )
        })?,
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    // Grow the body as bytes actually arrive instead of committing
    // Content-Length bytes up front (a header alone must not pin 64 MiB
    // of worker memory).
    let mut body: Vec<u8> = Vec::with_capacity(content_length.min(64 * 1024));
    let mut chunk = [0u8; 64 * 1024];
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        match reader.read(&mut chunk[..want]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) || std::time::Instant::now() >= hard_deadline {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    Ok(Some((
        Request {
            method,
            path,
            headers,
            body,
        },
        http11,
    )))
}

/// Writes all of `data`, retrying across write timeouts so a client
/// applying slow backpressure still gets served — unless `stop` is
/// raised, in which case the connection is abandoned so shutdown stays
/// prompt even with a peer that never drains its receive buffer.
fn write_all_ticking(stream: &mut TcpStream, data: &[u8], stop: &AtomicBool) -> io::Result<()> {
    let mut written = 0;
    while written < data.len() {
        match stream.write(&data[written..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer gone")),
            Ok(n) => written += n,
            Err(e) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return Err(io::Error::other("shutdown"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
    stop: &AtomicBool,
) -> io::Result<()> {
    // Head and body go out in ONE write: with Nagle's algorithm active, a
    // small body written after the head would sit in the kernel until the
    // peer's (possibly delayed) ACK of the head arrived — a latency cliff
    // of tens of milliseconds per response on loopback.
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    wire.push_str(&response.body);
    write_all_ticking(stream, wire.as_bytes(), stop)?;
    stream.flush()
}

/// The router: maps a request to a response. Panics in a router are
/// caught per-connection so one bad request can't take a worker down.
pub type Router = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

fn handle_connection(stream: TcpStream, router: &Router, stop: &AtomicBool) {
    // Reads and writes tick at READ_TICK so a parked worker notices
    // shutdown even when the peer neither sends nor receives.
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_write_timeout(Some(READ_TICK));
    // Responses are written as one complete buffer; disabling Nagle lets
    // that buffer leave immediately instead of coalescing with nothing.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while !stop.load(Ordering::SeqCst) {
        let (request, http11) = match read_request(&mut reader, stop) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                // Malformed request: best-effort 400 carrying the parse
                // detail (our own error strings — "transfer-encoding is
                // not supported", "line too long" — are the client's
                // only diagnostic), then drop the connection.
                let body = crate::json::obj([(
                    "error",
                    crate::json::Json::Str(format!("malformed request: {e}")),
                )]);
                let resp = Response::json(400, body.to_text());
                let _ = write_response(&mut writer, &resp, false, stop);
                return;
            }
        };
        let keep_alive = if http11 {
            !request
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        } else {
            request
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
        };
        let response =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router(&request))) {
                Ok(r) => r,
                Err(_) => Response::json(500, "{\"error\":\"internal panic\"}".into()),
            };
        if write_response(&mut writer, &response, keep_alive, stop).is_err() || !keep_alive {
            return;
        }
    }
}

/// A running server: accept thread + fixed worker pool.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins all threads.
    /// Workers parked on idle keep-alive connections notice within the
    /// socket read tick (200 ms), so this returns promptly even while
    /// clients hold sockets open.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `router` on a pool of
/// `workers` threads until [`ServerHandle::shutdown`].
///
/// # Errors
/// Propagates bind failures.
pub fn serve(addr: &str, workers: usize, router: Router) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
    let rx = Arc::new(Mutex::new(rx));

    let worker_count = workers.max(1);
    let mut worker_handles = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        let rx = Arc::clone(&rx);
        let router = Arc::clone(&router);
        let stop = Arc::clone(&shutdown);
        worker_handles.push(std::thread::spawn(move || loop {
            // Holding the lock only while receiving keeps the pool fair.
            let next = rx.lock().expect("worker queue lock").recv();
            match next {
                Ok(stream) => handle_connection(stream, &router, &stop),
                Err(_) => return, // accept thread gone: drain complete
            }
        }));
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    // A send only fails if all workers died; stop
                    // accepting.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Transient accept failure (e.g. fd exhaustion): back
                // off instead of busy-spinning the accept loop.
                Err(_) => std::thread::sleep(READ_TICK),
            }
        }
        // Dropping `tx` here lets idle workers observe the hangup.
    });

    Ok(ServerHandle {
        addr: local,
        shutdown,
        accept: Some(accept),
        workers: worker_handles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_router() -> Router {
        Arc::new(|req: &Request| {
            Response::json(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"len\":{}}}",
                    req.method,
                    req.path,
                    req.body.len()
                ),
            )
        })
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_parses_and_shuts_down() {
        let handle = serve("127.0.0.1:0", 2, echo_router()).unwrap();
        let addr = handle.addr();
        let reply = raw_roundtrip(
            addr,
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"path\":\"/query\""), "{reply}");
        assert!(reply.contains("\"len\":4"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        for i in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("HTTP/1.1 200"), "request {i}: {line}");
            // Drain headers + body for this response.
            let mut content_length = 0;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                if h.trim_end().is_empty() {
                    break;
                }
                if let Some((k, v)) = h.split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        content_length = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
        }
        handle.shutdown();
    }

    #[test]
    fn shutdown_unblocks_workers_parked_on_idle_keepalive() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        // One request without Connection: close, then leave the socket
        // open: the single worker parks in read_request on it.
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 16];
        let mut reader = BufReader::new(s.try_clone().unwrap());
        reader.read_exact(&mut first).unwrap();
        assert!(first.starts_with(b"HTTP/1.1 200"));

        // Shutdown must complete despite the held-open connection.
        let (done_tx, done_rx) = channel();
        std::thread::spawn(move || {
            handle.shutdown();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("shutdown hung on an idle keep-alive connection");
        drop(s);
    }

    #[test]
    fn invalid_content_length_is_rejected_not_zeroed() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        // Overflowing and non-numeric Content-Length must 400-and-close
        // instead of misreading the body as a pipelined next request.
        for cl in ["18446744073709551616", "abc"] {
            let reply = raw_roundtrip(
                handle.addr(),
                &format!("POST /q HTTP/1.1\r\nContent-Length: {cl}\r\n\r\n{{}}"),
            );
            assert!(reply.contains("400"), "cl `{cl}`: {reply}");
            assert!(reply.contains("content-length"), "cl `{cl}`: {reply}");
            // Exactly one response: nothing was misparsed as a second
            // request on this connection.
            assert_eq!(reply.matches("HTTP/1.1").count(), 1, "{reply}");
        }
        handle.shutdown();
    }

    #[test]
    fn http10_defaults_to_connection_close() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        let t0 = std::time::Instant::now();
        let reply = raw_roundtrip(handle.addr(), "GET /old HTTP/1.0\r\n\r\n");
        // The server closes immediately (well inside the idle timeout)
        // and says so.
        assert!(t0.elapsed() < IDLE_TIMEOUT, "HTTP/1.0 hung to idle timeout");
        assert!(reply.contains("connection: close"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn malformed_request_error_detail_reaches_the_client() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        let reply = raw_roundtrip(
            handle.addr(),
            "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(
            reply.contains("transfer-encoding is not supported"),
            "{reply}"
        );
        handle.shutdown();
    }

    #[test]
    fn slow_loris_partial_request_is_cut_off_and_worker_freed() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        // A request line with no terminating blank line, then silence:
        // the single worker must cut the connection at the hard
        // deadline instead of being captured forever.
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /stuck HTTP/1.1\r\nx-slow: 1\r\n")
            .unwrap();
        let mut reply = String::new();
        let t0 = std::time::Instant::now();
        let _ = s.read_to_string(&mut reply); // blocks until server closes
        assert!(
            t0.elapsed() < IDLE_TIMEOUT + REQUEST_TIMEOUT + Duration::from_secs(3),
            "server did not cut off the stalled request"
        );
        // The worker is free again and serves the next client.
        let reply = raw_roundtrip(
            handle.addr(),
            "GET /after HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("200"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn oversized_header_line_is_rejected_not_buffered() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /x HTTP/1.1\r\nx-junk: ").unwrap();
        // Stream far more than MAX_LINE with no newline; the server
        // must cut us off with a 400 instead of buffering forever.
        let chunk = vec![b'a'; 8 * 1024];
        let mut reply = String::new();
        for _ in 0..((2 * MAX_LINE) / chunk.len()) {
            if s.write_all(&chunk).is_err() {
                break; // server already closed on us — also a pass
            }
        }
        let _ = s.read_to_string(&mut reply);
        if !reply.is_empty() {
            assert!(reply.contains("400"), "{reply}");
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        let handle = serve("127.0.0.1:0", 1, echo_router()).unwrap();
        let reply = raw_roundtrip(handle.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.contains("400"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn router_panic_becomes_500() {
        let router: Router = Arc::new(|req: &Request| {
            if req.path == "/boom" {
                panic!("kaboom");
            }
            Response::json(200, "{}".into())
        });
        let handle = serve("127.0.0.1:0", 1, router).unwrap();
        let reply = raw_roundtrip(
            handle.addr(),
            "GET /boom HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("500"), "{reply}");
        // The worker survives and keeps serving.
        let reply = raw_roundtrip(
            handle.addr(),
            "GET /fine HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("200"), "{reply}");
        handle.shutdown();
    }
}
