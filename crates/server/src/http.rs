//! A std-only **evented** HTTP/1.1 server: a small fixed set of
//! readiness event loops (epoll via the `polling` shim) drives
//! nonblocking sockets, and each connection is an explicit state
//! machine — read headers → read body → dispatch → write response →
//! keep-alive idle. Completed requests are handed to a dispatch pool
//! (the CPU tier, [`crate::compute::DispatchPool`]); responses travel
//! back over a per-loop completion inbox plus a wakeup pipe.
//!
//! The concurrency model: idle keep-alive connections cost one epoll
//! registration and a small buffer instead of a parked thread, so a
//! handful of `--event-threads` can hold tens of thousands of open
//! connections while the dispatch pool sizes to the CPU-bound query
//! work. Framing semantics (bounded header/body sizes, the slow-loris
//! deadline, Content-Length-only bodies, error strings) are identical
//! to the blocking worker-pool implementation this replaced.
//!
//! The layer is application-agnostic: it parses requests, hands them to
//! a router closure, and writes responses (with keep-alive support).

use polling::{Event, Interest, Poller, Waker};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::compute::DispatchPool;

/// Request bodies larger than this are rejected (inline dataset uploads
/// are the biggest legitimate payload).
const MAX_BODY: usize = 64 * 1024 * 1024;
const MAX_HEADERS: usize = 100;
/// Request-line / header-line length cap: a peer streaming bytes with no
/// newline must not grow a connection's buffer without bound.
const MAX_LINE: usize = 64 * 1024;
/// Event-loop tick: the `epoll_wait` timeout, which bounds how long the
/// shutdown flag and connection deadlines can go unchecked.
const READ_TICK: Duration = Duration::from_millis(200);
/// How long an idle keep-alive connection may wait for its *next*
/// request before the server closes it. Idle connections are cheap now
/// (an epoll slot, not a thread), but dead peers should still be
/// reclaimed. (Shorter under `cfg(test)` so the suite can observe the
/// behavior without multi-second sleeps.)
#[cfg(not(test))]
const IDLE_TIMEOUT: Duration = Duration::from_secs(10);
#[cfg(test)]
const IDLE_TIMEOUT: Duration = Duration::from_secs(1);

/// Once a request's first byte has arrived, the whole request (line,
/// headers, body) must complete within this budget — otherwise a
/// slow-loris peer dribbling one byte per tick would pin its buffer
/// forever.
#[cfg(not(test))]
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);
#[cfg(test)]
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// Reserved poller token for the per-loop wakeup pipe.
const TOKEN_WAKER: usize = usize::MAX;
/// Reserved poller token for the listening socket (loop 0 only).
const TOKEN_LISTENER: usize = usize::MAX - 1;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// Request target, including any query string.
    pub path: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// An HTTP response to be written back.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body text.
    pub body: String,
    /// `content-type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// An `application/json` response with the given status and body.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
        }
    }

    /// A Prometheus text-exposition response (the `version=0.0.4`
    /// content type scrapers negotiate on).
    pub fn metrics_text(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        _ => "Unknown",
    }
}

/// Connection-level counters shared between the event loops and the
/// observability surface (`/healthz` `connections` block and the
/// `shapesearch_connections_*` metrics series).
#[derive(Debug, Default)]
pub struct ConnStats {
    /// Connections accepted since startup.
    pub accepted_total: AtomicU64,
    /// Currently open connections (gauge).
    pub active: AtomicU64,
    /// Open connections parked between requests waiting for keep-alive
    /// reuse (gauge; a subset of `active`).
    pub idle_keepalive: AtomicU64,
    /// Connections closed by a deadline: idle keep-alive expiry or the
    /// slow-loris request cutoff.
    pub timeouts: AtomicU64,
    /// Event-loop `wait` returns that delivered at least one readiness
    /// event (a proxy for loop activity; idle loops tick without
    /// counting).
    pub event_loop_wakeups: AtomicU64,
}

/// The router: maps a request to a response. Panics in a router are
/// caught per-request so one bad request can't take the server down.
pub type Router = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Event-loop and dispatch sizing for [`serve`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Readiness event-loop threads (`0` = auto: available parallelism).
    /// Each loop owns a slab of connections; loop 0 also owns the
    /// listener and deals accepted connections round-robin.
    pub event_threads: usize,
    /// Dispatch (CPU tier) threads running the router (`0` = auto:
    /// available parallelism).
    pub dispatch_threads: usize,
    /// Shared connection counters (exposed via [`ServerHandle::stats`]).
    pub stats: Arc<ConnStats>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            event_threads: 0,
            dispatch_threads: 0,
            stats: Arc::new(ConnStats::default()),
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental request parser
// ---------------------------------------------------------------------------

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parser state for one in-flight request on a connection. Bytes land in
/// the connection's buffer; `step` consumes them incrementally, so
/// byte-at-a-time delivery re-scans only the current line, never the
/// whole buffer.
#[derive(Debug)]
enum Parse {
    Headers(HeadParse),
    Body {
        request: Request,
        http11: bool,
        content_length: usize,
    },
}

#[derive(Debug, Default)]
struct HeadParse {
    /// Offset into the connection buffer where the current (unfinished)
    /// line starts.
    cursor: usize,
    /// `(method, path, http11)` once the request line has parsed.
    start: Option<(String, String, bool)>,
    headers: Vec<(String, String)>,
}

impl Parse {
    fn new() -> Parse {
        Parse::Headers(HeadParse::default())
    }

    /// Consumes as much of `buf` as possible. `Ok(Some(..))` is a
    /// complete request (its bytes have been drained from `buf`; any
    /// remainder is pipelined input for the next request). `Ok(None)`
    /// needs more bytes.
    fn step(&mut self, buf: &mut Vec<u8>) -> io::Result<Option<(Request, bool)>> {
        loop {
            match self {
                Parse::Headers(hp) => {
                    let Some(nl) = buf[hp.cursor..].iter().position(|&b| b == b'\n') else {
                        if buf.len() - hp.cursor >= MAX_LINE {
                            return Err(invalid("line too long"));
                        }
                        return Ok(None);
                    };
                    let line_end = hp.cursor + nl + 1;
                    if line_end - hp.cursor > MAX_LINE {
                        return Err(invalid("line too long"));
                    }
                    let line = std::str::from_utf8(&buf[hp.cursor..line_end])
                        .map_err(|_| invalid("stream did not contain valid UTF-8"))?;
                    if hp.start.is_none() {
                        let mut parts = line.split_whitespace();
                        let (method, path) = match (parts.next(), parts.next()) {
                            (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
                            _ => return Err(invalid(format!("malformed request line: {line:?}"))),
                        };
                        // HTTP/1.0 (and unknown versions) default to
                        // connection-close framing; only HTTP/1.1
                        // defaults to keep-alive.
                        let http11 = parts.next() == Some("HTTP/1.1");
                        hp.start = Some((method, path, http11));
                        hp.cursor = line_end;
                        continue;
                    }
                    let trimmed = line.trim_end();
                    if !trimmed.is_empty() {
                        if hp.headers.len() >= MAX_HEADERS {
                            return Err(invalid("too many headers"));
                        }
                        if let Some((k, v)) = trimmed.split_once(':') {
                            hp.headers.push((k.trim().to_owned(), v.trim().to_owned()));
                        }
                        hp.cursor = line_end;
                        continue;
                    }
                    // Blank line: end of headers.
                    let (method, path, http11) = hp.start.take().expect("request line parsed");
                    let headers = std::mem::take(&mut hp.headers);
                    // Chunked bodies are not implemented; treating them
                    // as body-less would misparse the chunk stream as
                    // pipelined requests, so refuse outright (the
                    // connection closes after the error response).
                    if headers
                        .iter()
                        .any(|(k, _)| k.eq_ignore_ascii_case("transfer-encoding"))
                    {
                        return Err(invalid(
                            "transfer-encoding is not supported; send a content-length body",
                        ));
                    }
                    // An unparseable Content-Length must be an error, not
                    // 0: defaulting would leave the body in the buffer to
                    // be misread as the next pipelined request.
                    let content_length = match headers
                        .iter()
                        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                    {
                        Some((_, v)) => v
                            .parse::<usize>()
                            .map_err(|_| invalid(format!("invalid content-length `{v}`")))?,
                        None => 0,
                    };
                    if content_length > MAX_BODY {
                        return Err(invalid("body too large"));
                    }
                    buf.drain(..line_end);
                    // Grow the body as bytes actually arrive instead of
                    // committing Content-Length bytes up front (a header
                    // alone must not pin 64 MiB).
                    *self = Parse::Body {
                        request: Request {
                            method,
                            path,
                            headers,
                            body: Vec::with_capacity(content_length.min(64 * 1024)),
                        },
                        http11,
                        content_length,
                    };
                }
                Parse::Body {
                    request,
                    http11,
                    content_length,
                } => {
                    let need = *content_length - request.body.len();
                    let take = need.min(buf.len());
                    request.body.extend_from_slice(&buf[..take]);
                    buf.drain(..take);
                    if request.body.len() < *content_length {
                        return Ok(None);
                    }
                    let http11 = *http11;
                    let Parse::Body { request, .. } = std::mem::replace(self, Parse::new()) else {
                        unreachable!("matched Body above");
                    };
                    return Ok(Some((request, http11)));
                }
            }
        }
    }

    /// Handles peer EOF: `Ok(None)` is a clean close between requests,
    /// `Ok(Some(..))` is a request that completed exactly at EOF, `Err`
    /// is a framing error to answer with a 400. An unterminated final
    /// line is delivered to the parser the way the old blocking reader
    /// delivered it: as a line without its newline.
    fn finish_eof(&mut self, buf: &mut Vec<u8>) -> io::Result<Option<(Request, bool)>> {
        if let Parse::Headers(hp) = self {
            if hp.start.is_none() && buf.len() == hp.cursor {
                return Ok(None);
            }
            if buf.len() > hp.cursor {
                buf.push(b'\n');
                if let Some(done) = self.step(buf)? {
                    return Ok(Some(done));
                }
            }
        }
        match self {
            Parse::Headers(_) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof in headers",
            )),
            Parse::Body { .. } => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body")),
        }
    }
}

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for (more of) a request.
    Reading,
    /// A complete request is executing on the dispatch pool; read
    /// interest is off so a pipelining peer cannot buffer without bound.
    Dispatched,
    /// A response is being flushed.
    Writing,
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    fd: polling::RawFd,
    /// Guards completions against slot reuse: a completion for an
    /// earlier connection that shared this slot is dropped.
    generation: u64,
    phase: Phase,
    /// Bytes read but not yet consumed by the parser.
    buf: Vec<u8>,
    parse: Parse,
    write_buf: Vec<u8>,
    written: usize,
    close_after_write: bool,
    idle_deadline: Instant,
    /// Armed at a request's first byte; a request that hasn't completed
    /// by then is cut off (slow-loris defense).
    hard_deadline: Option<Instant>,
    peer_eof: bool,
    /// Whether this connection is counted in the `idle_keepalive` gauge.
    counted_idle: bool,
    interest: Interest,
}

/// One response ready to be written back to a connection.
struct Completion {
    token: usize,
    generation: u64,
    response: Response,
    keep_alive: bool,
}

/// The cross-thread face of one event loop: new connections and
/// completed responses land here; the waker makes the loop notice.
struct LoopShared {
    waker: Waker,
    inbox: Mutex<Inbox>,
}

#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

impl LoopShared {
    fn push_conn(&self, stream: TcpStream) {
        self.inbox.lock().expect("inbox lock").conns.push(stream);
        let _ = self.waker.wake();
    }

    fn push_completion(&self, completion: Completion) {
        self.inbox
            .lock()
            .expect("inbox lock")
            .completions
            .push(completion);
        let _ = self.waker.wake();
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> polling::RawFd {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> polling::RawFd {
    -1
}

fn serialize_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    // Head and body go out in ONE buffer (and TCP_NODELAY is set): with
    // Nagle's algorithm active, a small body written after the head
    // would sit in the kernel until the peer's (possibly delayed) ACK of
    // the head arrived — a latency cliff of tens of milliseconds per
    // response on loopback.
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    wire.push_str(&response.body);
    wire.into_bytes()
}

struct EventLoop {
    poller: Poller,
    shared: Arc<LoopShared>,
    /// All loops' shared faces (for round-robin connection dealing).
    peers: Vec<Arc<LoopShared>>,
    /// This loop's index in `peers`.
    index: usize,
    next_peer: usize,
    /// Loop 0 owns the listener.
    listener: Option<TcpListener>,
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    stats: Arc<ConnStats>,
    router: Router,
    dispatch: Arc<DispatchPool>,
    stop: Arc<AtomicBool>,
    /// Set once `stop` is observed: new work is refused, Reading
    /// connections close, and the loop exits when in-flight requests
    /// have written back.
    draining: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let _ = self.poller.wait(&mut events, Some(READ_TICK));
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if !events.is_empty() {
                self.stats
                    .event_loop_wakeups
                    .fetch_add(1, Ordering::Relaxed);
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_WAKER => {
                        self.shared.waker.drain();
                        self.drain_inbox();
                    }
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_event(token, ev),
                }
            }
            self.sweep_deadlines();
            if self.draining && self.live_conns() == 0 {
                break;
            }
        }
        // Connections dealt to this loop but never registered must still
        // come off the active gauge.
        let inbox = std::mem::take(&mut *self.shared.inbox.lock().expect("inbox lock"));
        for _ in &inbox.conns {
            self.stats.active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn live_conns(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(raw_fd(&listener));
        }
        for token in 0..self.slots.len() {
            let Some(conn) = &self.slots[token] else {
                continue;
            };
            match conn.phase {
                // Idle / mid-request connections are abandoned (the old
                // pool abandoned them too); in-flight requests drain.
                Phase::Reading => self.close(token),
                // One final flush attempt; `flush_write` closes on
                // WouldBlock while draining.
                Phase::Writing => self.flush_write(token),
                Phase::Dispatched => {}
            }
        }
    }

    fn drain_inbox(&mut self) {
        let inbox = std::mem::take(&mut *self.shared.inbox.lock().expect("inbox lock"));
        for stream in inbox.conns {
            if self.draining {
                self.stats.active.fetch_sub(1, Ordering::Relaxed);
            } else {
                self.register(stream);
            }
        }
        for completion in inbox.completions {
            self.apply_completion(completion);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.stats.accepted_total.fetch_add(1, Ordering::Relaxed);
                    self.stats.active.fetch_add(1, Ordering::Relaxed);
                    let target = self.next_peer;
                    self.next_peer = (self.next_peer + 1) % self.peers.len();
                    if target == self.index {
                        self.register(stream);
                    } else {
                        self.peers[target].push_conn(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion):
                    // back off instead of busy-spinning — the listener
                    // is level-triggered and will fire again.
                    std::thread::sleep(READ_TICK / 4);
                    return;
                }
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.stats.active.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let _ = stream.set_nodelay(true);
        let fd = raw_fd(&stream);
        let token = match self.free.pop() {
            Some(t) => t,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        if self.poller.add(fd, token, Interest::READ).is_err() {
            self.free.push(token);
            self.stats.active.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        self.next_generation += 1;
        self.stats.idle_keepalive.fetch_add(1, Ordering::Relaxed);
        self.slots[token] = Some(Conn {
            stream,
            fd,
            generation: self.next_generation,
            phase: Phase::Reading,
            buf: Vec::new(),
            parse: Parse::new(),
            write_buf: Vec::new(),
            written: 0,
            close_after_write: false,
            idle_deadline: Instant::now() + IDLE_TIMEOUT,
            hard_deadline: None,
            peer_eof: false,
            counted_idle: true,
            interest: Interest::READ,
        });
    }

    fn close(&mut self, token: usize) {
        let Some(conn) = self.slots[token].take() else {
            return;
        };
        let _ = self.poller.delete(conn.fd);
        self.free.push(token);
        self.stats.active.fetch_sub(1, Ordering::Relaxed);
        if conn.counted_idle {
            self.stats.idle_keepalive.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn set_interest(&mut self, token: usize, interest: Interest) {
        let Some(conn) = self.slots[token].as_mut() else {
            return;
        };
        if conn.interest == interest {
            return;
        }
        let fd = conn.fd;
        conn.interest = interest;
        if self.poller.modify(fd, token, interest).is_err() {
            self.close(token);
        }
    }

    fn conn_event(&mut self, token: usize, ev: Event) {
        if !matches!(self.slots.get(token), Some(Some(_))) {
            return;
        }
        if ev.readable {
            self.on_readable(token);
        }
        if self.slots[token].is_none() {
            return;
        }
        if ev.writable && self.slots[token].as_ref().expect("checked").phase == Phase::Writing {
            self.flush_write(token);
        }
    }

    fn on_readable(&mut self, token: usize) {
        match self.slots[token].as_ref().expect("checked").phase {
            Phase::Reading => self.read_and_parse(token),
            Phase::Dispatched => self.probe_peer(token),
            // The write path surfaces errors on its own.
            Phase::Writing => {}
        }
    }

    fn read_and_parse(&mut self, token: usize) {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let conn = self.slots[token].as_mut().expect("checked");
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.peer_eof = true;
                    self.handle_peer_eof(token);
                    return;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&scratch[..n]);
                    if conn.counted_idle {
                        conn.counted_idle = false;
                        self.stats.idle_keepalive.fetch_sub(1, Ordering::Relaxed);
                    }
                    if conn.hard_deadline.is_none() {
                        conn.hard_deadline = Some(Instant::now() + REQUEST_TIMEOUT);
                    }
                    match conn.parse.step(&mut conn.buf) {
                        Ok(Some((request, http11))) => {
                            self.dispatch(token, request, http11);
                            return;
                        }
                        Ok(None) => {}
                        Err(e) => {
                            self.respond_framing_error(token, &e);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
    }

    fn handle_peer_eof(&mut self, token: usize) {
        let conn = self.slots[token].as_mut().expect("checked");
        match conn.parse.finish_eof(&mut conn.buf) {
            Ok(None) => self.close(token),
            Ok(Some((request, http11))) => self.dispatch(token, request, http11),
            Err(e) => self.respond_framing_error(token, &e),
        }
    }

    /// A readiness event on a `Dispatched` connection can only mean an
    /// error/hangup (read interest is off): probe the socket so resets
    /// are discovered and pipelined bytes (delivered alongside a
    /// half-close) stay buffered.
    fn probe_peer(&mut self, token: usize) {
        let mut scratch = [0u8; 4096];
        let conn = self.slots[token].as_mut().expect("checked");
        match conn.stream.read(&mut scratch) {
            Ok(0) => conn.peer_eof = true,
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                // A peer flooding pipelined bytes while a request is in
                // flight is bounded here, not by its send rate.
                if conn.buf.len() > 4 * MAX_LINE {
                    self.close(token);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => self.close(token),
        }
    }

    fn dispatch(&mut self, token: usize, request: Request, http11: bool) {
        let keep_alive = if http11 {
            !request
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        } else {
            request
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
        };
        let conn = self.slots[token].as_mut().expect("checked");
        conn.phase = Phase::Dispatched;
        conn.hard_deadline = None;
        let generation = conn.generation;
        self.set_interest(token, Interest::NONE);
        let router = Arc::clone(&self.router);
        let shared = Arc::clone(&self.shared);
        self.dispatch.spawn(move || {
            let response =
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router(&request))) {
                    Ok(r) => r,
                    Err(_) => Response::json(500, "{\"error\":\"internal panic\"}".into()),
                };
            shared.push_completion(Completion {
                token,
                generation,
                response,
                keep_alive,
            });
        });
    }

    fn apply_completion(&mut self, completion: Completion) {
        let valid = self
            .slots
            .get(completion.token)
            .and_then(|s| s.as_ref())
            .is_some_and(|conn| {
                conn.generation == completion.generation && conn.phase == Phase::Dispatched
            });
        if !valid {
            return;
        }
        self.respond(
            completion.token,
            &completion.response,
            completion.keep_alive,
        );
    }

    /// Malformed request: best-effort 400 carrying the parse detail (our
    /// own error strings — "transfer-encoding is not supported", "line
    /// too long" — are the client's only diagnostic), then close.
    fn respond_framing_error(&mut self, token: usize, e: &io::Error) {
        let body = crate::json::obj([(
            "error",
            crate::json::Json::Str(format!("malformed request: {e}")),
        )]);
        let response = Response::json(400, body.to_text());
        self.respond(token, &response, false);
    }

    fn respond(&mut self, token: usize, response: &Response, keep_alive: bool) {
        let conn = self.slots[token].as_mut().expect("checked");
        conn.write_buf = serialize_response(response, keep_alive);
        conn.written = 0;
        conn.phase = Phase::Writing;
        conn.close_after_write = !keep_alive;
        self.flush_write(token);
    }

    fn flush_write(&mut self, token: usize) {
        loop {
            let conn = self.slots[token].as_mut().expect("checked");
            if conn.written == conn.write_buf.len() {
                self.finish_response(token);
                return;
            }
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.draining {
                        // Shutdown abandons peers that aren't draining
                        // their receive buffer (the old pool did too).
                        self.close(token);
                    } else {
                        self.set_interest(token, Interest::WRITE);
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
    }

    fn finish_response(&mut self, token: usize) {
        let conn = self.slots[token].as_mut().expect("checked");
        if conn.close_after_write || self.draining {
            self.close(token);
            return;
        }
        conn.phase = Phase::Reading;
        conn.parse = Parse::new();
        conn.write_buf = Vec::new();
        conn.written = 0;
        conn.idle_deadline = Instant::now() + IDLE_TIMEOUT;
        conn.hard_deadline = None;
        if !conn.buf.is_empty() {
            // Pipelined bytes arrived during the previous request.
            conn.hard_deadline = Some(Instant::now() + REQUEST_TIMEOUT);
            match conn.parse.step(&mut conn.buf) {
                Ok(Some((request, http11))) => {
                    self.dispatch(token, request, http11);
                    return;
                }
                Ok(None) => {
                    if self.slots[token].as_ref().expect("checked").peer_eof {
                        self.handle_peer_eof(token);
                        return;
                    }
                }
                Err(e) => {
                    self.respond_framing_error(token, &e);
                    return;
                }
            }
            self.set_interest(token, Interest::READ);
            return;
        }
        if conn.peer_eof {
            self.close(token);
            return;
        }
        conn.counted_idle = true;
        self.stats.idle_keepalive.fetch_add(1, Ordering::Relaxed);
        self.set_interest(token, Interest::READ);
    }

    fn sweep_deadlines(&mut self) {
        if self.draining {
            return;
        }
        let now = Instant::now();
        for token in 0..self.slots.len() {
            let expired = match &self.slots[token] {
                Some(conn) if conn.phase == Phase::Reading => match conn.hard_deadline {
                    Some(hard) => now >= hard,
                    None => now >= conn.idle_deadline,
                },
                _ => false,
            };
            if expired {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                self.close(token);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server handle + entry point
// ---------------------------------------------------------------------------

/// A running server: event-loop threads plus the dispatch pool.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    loops: Vec<JoinHandle<()>>,
    shareds: Vec<Arc<LoopShared>>,
    dispatch: Arc<DispatchPool>,
    stats: Arc<ConnStats>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared connection counters.
    pub fn stats(&self) -> Arc<ConnStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, drains in-flight requests, and joins all
    /// threads. Idle keep-alive connections are closed immediately;
    /// event loops notice the flag within one tick (200 ms), so this
    /// returns promptly even while clients hold sockets open.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for shared in &self.shareds {
            let _ = shared.waker.wake();
        }
        // Order matters: draining the dispatch pool first guarantees
        // every in-flight request's completion reaches its loop, and a
        // loop only exits once its dispatched connections have written
        // back (or been abandoned).
        self.dispatch.shutdown();
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `router` on
/// [`HttpConfig::event_threads`] readiness loops backed by a
/// [`HttpConfig::dispatch_threads`]-sized CPU tier, until
/// [`ServerHandle::shutdown`].
///
/// # Errors
/// Propagates bind and poller-setup failures.
pub fn serve(addr: &str, config: HttpConfig, router: Router) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let auto = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    };
    let event_threads = match config.event_threads {
        0 => auto(),
        n => n,
    };
    let dispatch_threads = match config.dispatch_threads {
        0 => auto(),
        n => n,
    };

    let stop = Arc::new(AtomicBool::new(false));
    let dispatch = Arc::new(DispatchPool::new(dispatch_threads));
    let mut shareds = Vec::with_capacity(event_threads);
    let mut pollers = Vec::with_capacity(event_threads);
    for _ in 0..event_threads {
        let shared = Arc::new(LoopShared {
            waker: Waker::new()?,
            inbox: Mutex::new(Inbox::default()),
        });
        let poller = Poller::new()?;
        poller.add(shared.waker.fd(), TOKEN_WAKER, Interest::READ)?;
        shareds.push(shared);
        pollers.push(poller);
    }
    pollers[0].add(raw_fd(&listener), TOKEN_LISTENER, Interest::READ)?;

    let mut listener = Some(listener);
    let mut loops = Vec::with_capacity(event_threads);
    for (index, poller) in pollers.into_iter().enumerate() {
        let event_loop = EventLoop {
            poller,
            shared: Arc::clone(&shareds[index]),
            peers: shareds.clone(),
            index,
            next_peer: 0,
            listener: if index == 0 { listener.take() } else { None },
            slots: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            stats: Arc::clone(&config.stats),
            router: Arc::clone(&router),
            dispatch: Arc::clone(&dispatch),
            stop: Arc::clone(&stop),
            draining: false,
        };
        loops.push(std::thread::spawn(move || event_loop.run()));
    }

    Ok(ServerHandle {
        addr: local,
        stop,
        loops,
        shareds,
        dispatch,
        stats: config.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn serve_test(event_threads: usize, router: Router) -> ServerHandle {
        serve(
            "127.0.0.1:0",
            HttpConfig {
                event_threads,
                dispatch_threads: 2,
                stats: Arc::new(ConnStats::default()),
            },
            router,
        )
        .unwrap()
    }

    fn echo_router() -> Router {
        Arc::new(|req: &Request| {
            Response::json(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"len\":{}}}",
                    req.method,
                    req.path,
                    req.body.len()
                ),
            )
        })
    }

    fn raw_roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    /// Reads one full response (status line + headers + body) off a
    /// keep-alive connection, returning the status line and body.
    fn read_response(reader: &mut BufReader<TcpStream>) -> (String, String) {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut content_length = 0;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).unwrap();
            if h.trim_end().is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    fn wait_until(timeout: Duration, mut ok: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        ok()
    }

    #[test]
    fn serves_parses_and_shuts_down() {
        let handle = serve_test(2, echo_router());
        let addr = handle.addr();
        let reply = raw_roundtrip(
            addr,
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("\"path\":\"/query\""), "{reply}");
        assert!(reply.contains("\"len\":4"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let handle = serve_test(1, echo_router());
        let s = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let mut s = s;
        for i in 0..3 {
            s.write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let (status, _) = read_response(&mut reader);
            assert!(status.starts_with("HTTP/1.1 200"), "request {i}: {status}");
        }
        handle.shutdown();
    }

    #[test]
    fn shutdown_unblocks_loops_parked_on_idle_keepalive() {
        let handle = serve_test(1, echo_router());
        // One request without Connection: close, then leave the socket
        // open: the connection parks idle in the event loop.
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut first = [0u8; 16];
        let mut reader = BufReader::new(s.try_clone().unwrap());
        reader.read_exact(&mut first).unwrap();
        assert!(first.starts_with(b"HTTP/1.1 200"));

        // Shutdown must complete despite the held-open connection.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            handle.shutdown();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("shutdown hung on an idle keep-alive connection");
        drop(s);
    }

    #[test]
    fn invalid_content_length_is_rejected_not_zeroed() {
        let handle = serve_test(1, echo_router());
        // Overflowing and non-numeric Content-Length must 400-and-close
        // instead of misreading the body as a pipelined next request.
        for cl in ["18446744073709551616", "abc"] {
            let reply = raw_roundtrip(
                handle.addr(),
                &format!("POST /q HTTP/1.1\r\nContent-Length: {cl}\r\n\r\n{{}}"),
            );
            assert!(reply.contains("400"), "cl `{cl}`: {reply}");
            assert!(reply.contains("content-length"), "cl `{cl}`: {reply}");
            // Exactly one response: nothing was misparsed as a second
            // request on this connection.
            assert_eq!(reply.matches("HTTP/1.1").count(), 1, "{reply}");
        }
        handle.shutdown();
    }

    #[test]
    fn http10_defaults_to_connection_close() {
        let handle = serve_test(1, echo_router());
        let t0 = Instant::now();
        let reply = raw_roundtrip(handle.addr(), "GET /old HTTP/1.0\r\n\r\n");
        // The server closes immediately (well inside the idle timeout)
        // and says so.
        assert!(t0.elapsed() < IDLE_TIMEOUT, "HTTP/1.0 hung to idle timeout");
        assert!(reply.contains("connection: close"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn malformed_request_error_detail_reaches_the_client() {
        let handle = serve_test(1, echo_router());
        let reply = raw_roundtrip(
            handle.addr(),
            "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(
            reply.contains("transfer-encoding is not supported"),
            "{reply}"
        );
        handle.shutdown();
    }

    #[test]
    fn slow_loris_partial_request_is_cut_off_and_slot_freed() {
        let handle = serve_test(1, echo_router());
        let stats = handle.stats();
        // A request line with no terminating blank line, then silence:
        // the connection must be cut at the hard deadline instead of
        // holding its slot forever.
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /stuck HTTP/1.1\r\nx-slow: 1\r\n")
            .unwrap();
        let mut reply = String::new();
        let t0 = Instant::now();
        let _ = s.read_to_string(&mut reply); // blocks until server closes
        assert!(
            t0.elapsed() < IDLE_TIMEOUT + REQUEST_TIMEOUT + Duration::from_secs(3),
            "server did not cut off the stalled request"
        );
        assert!(
            wait_until(Duration::from_secs(2), || {
                stats.timeouts.load(Ordering::Relaxed) >= 1
                    && stats.active.load(Ordering::Relaxed) == 0
            }),
            "cutoff must count as a timeout and free the slot"
        );
        // The server keeps serving.
        let reply = raw_roundtrip(
            handle.addr(),
            "GET /after HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("200"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn oversized_header_line_is_rejected_not_buffered() {
        let handle = serve_test(1, echo_router());
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /x HTTP/1.1\r\nx-junk: ").unwrap();
        // Stream far more than MAX_LINE with no newline; the server
        // must cut us off with a 400 instead of buffering forever.
        let chunk = vec![b'a'; 8 * 1024];
        let mut reply = String::new();
        for _ in 0..((2 * MAX_LINE) / chunk.len()) {
            if s.write_all(&chunk).is_err() {
                break; // server already closed on us — also a pass
            }
        }
        let _ = s.read_to_string(&mut reply);
        if !reply.is_empty() {
            assert!(reply.contains("400"), "{reply}");
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        let handle = serve_test(1, echo_router());
        let reply = raw_roundtrip(handle.addr(), "NOT-HTTP\r\n\r\n");
        assert!(reply.contains("400"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn router_panic_becomes_500() {
        let router: Router = Arc::new(|req: &Request| {
            if req.path == "/boom" {
                panic!("kaboom");
            }
            Response::json(200, "{}".into())
        });
        let handle = serve_test(1, router);
        let reply = raw_roundtrip(
            handle.addr(),
            "GET /boom HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("500"), "{reply}");
        // The server survives and keeps serving.
        let reply = raw_roundtrip(
            handle.addr(),
            "GET /fine HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("200"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn byte_at_a_time_delivery_is_assembled_into_one_request() {
        let handle = serve_test(1, echo_router());
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let wire = b"POST /drip HTTP/1.1\r\nContent-Length: 3\r\nConnection: close\r\n\r\nabc";
        for &b in wire.iter() {
            s.write_all(&[b]).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut reply = String::new();
        let _ = s.read_to_string(&mut reply);
        assert!(reply.contains("200"), "{reply}");
        assert!(reply.contains("\"path\":\"/drip\""), "{reply}");
        assert!(reply.contains("\"len\":3"), "{reply}");
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order_on_one_socket() {
        let handle = serve_test(1, echo_router());
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        // Three back-to-back requests in a single write.
        s.write_all(
            b"GET /a HTTP/1.1\r\nHost: x\r\n\r\n\
              POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
              GET /c HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        for path in ["/a", "/b", "/c"] {
            let (status, body) = read_response(&mut reader);
            assert!(status.starts_with("HTTP/1.1 200"), "{path}: {status}");
            assert!(body.contains(&format!("\"path\":\"{path}\"")), "{body}");
        }
        handle.shutdown();
    }

    #[test]
    fn mid_response_disconnect_reclaims_the_slot() {
        // A response far bigger than the socket buffer, so the write
        // path is guaranteed to span multiple readiness cycles.
        let router: Router = Arc::new(|_req: &Request| Response::json(200, "x".repeat(8 << 20)));
        let handle = serve_test(1, router);
        let stats = handle.stats();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /big HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        // Read a little so the response definitely started, then vanish.
        let mut start = [0u8; 64];
        s.read_exact(&mut start).unwrap();
        drop(s);
        assert!(
            wait_until(Duration::from_secs(5), || stats
                .active
                .load(Ordering::Relaxed)
                == 0),
            "disconnected mid-write connection was not reclaimed"
        );
        handle.shutdown();
    }

    #[test]
    fn idle_keepalive_connections_scale_beyond_the_thread_count() {
        let handle = serve_test(2, echo_router());
        let stats = handle.stats();
        // Far more parked connections than event (2) + dispatch (2)
        // threads; under the old thread-per-connection model these would
        // starve the pool.
        let conns: Vec<TcpStream> = (0..200)
            .map(|_| TcpStream::connect(handle.addr()).unwrap())
            .collect();
        assert!(
            wait_until(Duration::from_secs(5), || {
                stats.active.load(Ordering::Relaxed) == 200
                    && stats.idle_keepalive.load(Ordering::Relaxed) == 200
            }),
            "all idle connections must register (active={}, idle={})",
            stats.active.load(Ordering::Relaxed),
            stats.idle_keepalive.load(Ordering::Relaxed),
        );
        assert_eq!(stats.accepted_total.load(Ordering::Relaxed), 200);
        // Service stays responsive through the parked crowd.
        let reply = raw_roundtrip(
            handle.addr(),
            "GET /through HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("200"), "{reply}");
        drop(conns);
        assert!(
            wait_until(Duration::from_secs(5), || stats
                .active
                .load(Ordering::Relaxed)
                == 0),
            "closed connections must come off the gauges"
        );
        assert_eq!(stats.idle_keepalive.load(Ordering::Relaxed), 0);
        handle.shutdown();
    }

    #[test]
    fn idle_expiry_counts_as_timeout_and_closes() {
        let handle = serve_test(1, echo_router());
        let stats = handle.stats();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        // Never send anything; the 1s test idle deadline must reap it.
        let mut out = String::new();
        let t0 = Instant::now();
        let _ = s.read_to_string(&mut out); // EOF when the server closes
        assert!(t0.elapsed() >= IDLE_TIMEOUT - Duration::from_millis(100));
        assert!(
            wait_until(Duration::from_secs(2), || {
                stats.timeouts.load(Ordering::Relaxed) >= 1
                    && stats.active.load(Ordering::Relaxed) == 0
            }),
            "idle expiry must count and reclaim"
        );
        handle.shutdown();
    }
}
