//! The shared compute pool: short CPU-bound tasks (one engine shard's
//! pass for one query group) from *every* request interleave on one
//! fixed set of threads.
//!
//! This is what lets a single query saturate the machine — its dataset's
//! shards fan out as independent tasks — while keeping admission fair: a
//! giant batch no longer monopolizes one HTTP worker for its full
//! duration, because it decomposes into many short shard tasks that
//! drain from the same queue as everyone else's.
//!
//! Submitters are not idle bystanders: [`ComputePool::run_all`] makes
//! the calling (HTTP worker) thread *help drain the queue* while its own
//! batch is outstanding. That guarantees progress with any pool size
//! (even zero threads — everything runs on the caller), adds the blocked
//! submitter's core back into the compute budget, and can never deadlock
//! because shard tasks are leaf work that submits nothing.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    queue: Mutex<Queue>,
    /// Signals pool threads that a job (or shutdown) is available.
    ready: Condvar,
}

impl PoolInner {
    fn pop(&self) -> Option<Job> {
        self.queue.lock().expect("compute queue").jobs.pop_front()
    }
}

/// Tracks one `run_all` batch: how many of its tasks are still
/// outstanding, signalled as each completes.
struct BatchState {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl BatchState {
    /// Marks one task finished (runs even if the task panicked, so a
    /// waiter can never hang on a poisoned batch).
    fn finish_one(&self) {
        let mut remaining = self.remaining.lock().expect("batch latch");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// Drop guard: decrements the batch latch even when the task panics.
struct FinishGuard<'a>(&'a BatchState);

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.0.finish_one();
    }
}

/// A fixed pool of compute threads with a help-while-waiting submitter
/// protocol (see the module docs).
pub struct ComputePool {
    inner: Arc<PoolInner>,
    threads: Vec<JoinHandle<()>>,
}

impl ComputePool {
    /// A pool of `threads` compute threads. Zero is valid: every task
    /// then runs on the submitting thread inside [`Self::run_all`].
    pub fn new(threads: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut queue = inner.queue.lock().expect("compute queue");
                        loop {
                            if let Some(job) = queue.jobs.pop_front() {
                                break job;
                            }
                            if queue.shutdown {
                                return;
                            }
                            queue = inner.ready.wait(queue).expect("compute queue");
                        }
                    };
                    // A panicking task must not take the pool thread down;
                    // the batch guard inside the job already released the
                    // latch, and the submitter surfaces the panic.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                })
            })
            .collect();
        Self {
            inner,
            threads: handles,
        }
    }

    /// Number of pool threads (not counting helping submitters).
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Runs every task to completion and returns their results in input
    /// order. Tasks are pushed onto the shared queue; pool threads and
    /// the calling thread drain it together (the caller may execute
    /// *other* requests' queued tasks while waiting — that interleaving
    /// is the fairness property, and shard tasks are short by design).
    ///
    /// # Panics
    /// Re-panics on the caller if any task panicked.
    pub fn run_all<T: Send + 'static>(&self, tasks: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let batch = Arc::new(BatchState {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());

        {
            let mut queue = self.inner.queue.lock().expect("compute queue");
            for (i, task) in tasks.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                let slots = Arc::clone(&slots);
                queue.jobs.push_back(Box::new(move || {
                    // The guard releases the latch even if `task` panics.
                    let _guard = FinishGuard(&batch);
                    let value = task();
                    *slots[i].lock().expect("result slot") = Some(value);
                }));
            }
        }
        self.inner.ready.notify_all();

        // Help drain until this batch completes. When the queue is
        // empty, every outstanding task of ours is running on some other
        // thread, whose completion will signal the batch latch. The
        // latch is re-checked after every popped job — once this batch
        // is done the submitter must return its response immediately,
        // not keep chewing through other requests' backlog.
        loop {
            if *batch.remaining.lock().expect("batch latch") == 0 {
                break;
            }
            if let Some(job) = self.inner.pop() {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                continue;
            }
            let remaining = batch.remaining.lock().expect("batch latch");
            if *remaining == 0 {
                break;
            }
            // Re-check the queue periodically so a task enqueued after
            // the empty check above still finds a helper.
            let (guard, _) = batch
                .done
                .wait_timeout(remaining, std::time::Duration::from_millis(20))
                .expect("batch latch");
            if *guard == 0 {
                break;
            }
        }

        // Take results through the mutexes: a finished job's closure may
        // not have dropped its `Arc` clone of `slots` yet (the latch
        // releases from a local drop guard, before captured upvars drop),
        // so the Arc is not necessarily unique here.
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("result slot")
                    .take()
                    .expect("a shard task panicked")
            })
            .collect()
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        self.inner.queue.lock().expect("compute queue").shutdown = true;
        self.inner.ready.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The request-dispatch tier of the evented HTTP core: a fixed set of
/// threads that run router closures handed over by the event loops.
///
/// Deliberately **not** [`ComputePool`]: compute tasks are leaf work and
/// their submitters help drain the queue, which is exactly wrong for
/// router jobs — a router job *submits* compute batches, so a helping
/// router thread could pop another router job mid-wait and recurse
/// without bound. Dispatch workers are plain consumers: one queued job
/// at a time, completion delivered back to the owning event loop via its
/// inbox + waker, never by the dispatcher touching sockets.
pub struct DispatchPool {
    inner: Arc<PoolInner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl DispatchPool {
    /// A pool of `threads` dispatch threads (at least one: unlike the
    /// compute pool there is no helping submitter to fall back on).
    pub fn new(threads: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..threads.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut queue = inner.queue.lock().expect("dispatch queue");
                        loop {
                            // Pop before honoring shutdown: queued jobs
                            // carry in-flight requests whose connections
                            // wait on their completions, so shutdown
                            // drains the queue instead of dropping it.
                            if let Some(job) = queue.jobs.pop_front() {
                                break job;
                            }
                            if queue.shutdown {
                                return;
                            }
                            queue = inner.ready.wait(queue).expect("dispatch queue");
                        }
                    };
                    // Router jobs catch their own panics (they must
                    // always deliver a completion); this is a backstop
                    // for the pool thread itself.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                })
            })
            .collect();
        Self {
            inner,
            threads: Mutex::new(handles),
        }
    }

    /// Number of dispatch threads.
    pub fn workers(&self) -> usize {
        self.threads.lock().expect("dispatch threads").len()
    }

    /// Enqueues `job` for the next free dispatch thread. If the pool has
    /// already shut down (a shutdown/enqueue race at server stop), the
    /// job runs inline on the caller so its completion is never lost.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(job);
        let job = {
            let mut queue = self.inner.queue.lock().expect("dispatch queue");
            if queue.shutdown {
                Some(job)
            } else {
                queue.jobs.push_back(job);
                None
            }
        };
        match job {
            Some(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            None => self.inner.ready.notify_one(),
        }
    }

    /// Closes the queue, runs every queued job to completion, and joins
    /// the threads. Idempotent; callable through a shared reference (the
    /// event loops and the server handle share the pool via `Arc`).
    pub fn shutdown(&self) {
        self.inner.queue.lock().expect("dispatch queue").shutdown = true;
        self.inner.ready.notify_all();
        let handles = std::mem::take(&mut *self.threads.lock().expect("dispatch threads"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for DispatchPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_tasks_and_preserves_order() {
        let pool = ComputePool::new(3);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = pool.run_all(tasks);
        assert_eq!(results, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_thread_pool_runs_on_the_caller() {
        let pool = ComputePool::new(0);
        let caller = std::thread::current().id();
        let results = pool.run_all(vec![
            Box::new(move || std::thread::current().id() == caller)
                as Box<dyn FnOnce() -> bool + Send>,
        ]);
        assert_eq!(results, vec![true]);
    }

    #[test]
    fn concurrent_submitters_interleave_on_one_queue() {
        let pool = Arc::new(ComputePool::new(2));
        let executed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let executed = Arc::clone(&executed);
                scope.spawn(move || {
                    let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..25)
                        .map(|_| {
                            let executed = Arc::clone(&executed);
                            Box::new(move || {
                                executed.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send>
                        })
                        .collect();
                    pool.run_all(tasks);
                });
            }
        });
        assert_eq!(executed.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn dispatch_pool_runs_jobs_and_drains_on_shutdown() {
        let pool = DispatchPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Shutdown must run every queued job, not drop the backlog.
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 50);
        // Post-shutdown spawns run inline so completions are never lost.
        let ran2 = Arc::clone(&ran);
        pool.spawn(move || {
            ran2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 51);
    }

    #[test]
    fn panicking_task_propagates_without_hanging() {
        let pool = ComputePool::new(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_all(vec![
                Box::new(|| panic!("task boom")) as Box<dyn FnOnce() + Send>
            ]);
        }));
        assert!(outcome.is_err(), "the panic must reach the submitter");
        // The pool survives and keeps executing.
        let results = pool.run_all(vec![
            Box::new(|| 7usize) as Box<dyn FnOnce() -> usize + Send>
        ]);
        assert_eq!(results, vec![7]);
    }
}
