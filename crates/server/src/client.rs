//! A tiny blocking HTTP/JSON client for the server — used by the
//! integration tests and handy for scripting against a running service.

use crate::json::{self, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed response: status code plus JSON body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The parsed JSON response body.
    pub body: Json,
}

impl ClientResponse {
    /// Panics with the server's error body unless the status is 2xx —
    /// for tests and scripts where any failure is fatal anyway.
    pub fn expect_ok(self, context: &str) -> Json {
        assert!(
            (200..300).contains(&self.status),
            "{context}: status {} body {}",
            self.status,
            self.body.to_text()
        );
        self.body
    }
}

/// A blocking client bound to one server address. Each call opens a
/// fresh connection (`Connection: close`), which keeps the client free
/// of pooling state and exercises the server's accept path.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the server at `addr` (anything printable as
    /// `host:port`).
    pub fn new(addr: impl ToString) -> Self {
        Self {
            addr: addr.to_string(),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn get(&self, path: &str) -> io::Result<ClientResponse> {
        self.send("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn post(&self, path: &str, body: &Json) -> io::Result<ClientResponse> {
        self.send("POST", path, Some(body.to_text()))
    }

    /// Posts a whole batch of query objects to `/query` in one request.
    /// The server shares one engine pass (and any in-flight identical
    /// computations) across the batch and replies with
    /// `{"batch", "micros", "responses": [...]}` — one response object
    /// (or `{"error","status"}`) per query, in input order. Batches above
    /// the server's `max_batch` are refused with a structured
    /// `batch_too_large` 400.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn query_batch(&self, queries: Vec<Json>) -> io::Result<ClientResponse> {
        self.post("/query", &Json::Arr(queries))
    }

    fn send(&self, method: &str, path: &str, body: Option<String>) -> io::Result<ClientResponse> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unresolvable address"))?;
        let mut stream = TcpStream::connect(addr)?;
        // The request goes out as one buffer; without Nagle it leaves now.
        let _ = stream.set_nodelay(true);
        let body = body.unwrap_or_default();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream.write_all(request.as_bytes())?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        // Skip headers; Connection: close means body runs to EOF.
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
                break;
            }
        }
        let mut body_text = String::new();
        reader.read_to_string(&mut body_text)?;
        let body = json::parse(&body_text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad body: {e}")))?;
        Ok(ClientResponse { status, body })
    }
}
