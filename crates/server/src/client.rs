//! Blocking HTTP/JSON clients for the server.
//!
//! [`Client`] is the simple one-connection-per-call client used by the
//! integration tests and handy for scripting. [`PooledClient`] is the
//! router-side RPC client for multi-machine sharding: it keeps a small
//! pool of keep-alive connections per shard endpoint (remote shard
//! fan-out happens on every cache miss, so a TCP handshake per RPC
//! would dominate small queries), frames responses by `Content-Length`
//! instead of connection close, and retries connect failures (a
//! configurable number of times, [`ClientConfig::retries`]) before
//! reporting an endpoint unreachable.
//!
//! For replicated shards, [`PooledClient::post_replicas`] generalizes
//! that single-endpoint retry into **try-next-replica failover** with
//! per-endpoint health state: an endpoint that fails
//! [`ClientConfig::eject_after`] consecutive calls is *ejected* —
//! demoted to last resort so healthy replicas stop paying its connect
//! timeout — and re-admitted to its declared position after
//! [`ClientConfig::probe_after`] for one probe call (a circuit
//! breaker's closed → open → half-open cycle). Ejected endpoints are
//! still tried when every healthy replica has failed: a call fails
//! only once **every** replica has been attempted, so replica order is
//! a latency preference, never a correctness decision.

use crate::json::{self, Json};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A parsed response: status code plus JSON body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The parsed JSON response body.
    pub body: Json,
}

impl ClientResponse {
    /// Panics with the server's error body unless the status is 2xx —
    /// for tests and scripts where any failure is fatal anyway.
    pub fn expect_ok(self, context: &str) -> Json {
        assert!(
            (200..300).contains(&self.status),
            "{context}: status {} body {}",
            self.status,
            self.body.to_text()
        );
        self.body
    }
}

/// A blocking client bound to one server address. Each call opens a
/// fresh connection (`Connection: close`), which keeps the client free
/// of pooling state and exercises the server's accept path.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the server at `addr` (anything printable as
    /// `host:port`).
    pub fn new(addr: impl ToString) -> Self {
        Self {
            addr: addr.to_string(),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn get(&self, path: &str) -> io::Result<ClientResponse> {
        self.send("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn post(&self, path: &str, body: &Json) -> io::Result<ClientResponse> {
        self.send("POST", path, Some(body.to_text()))
    }

    /// Posts a whole batch of query objects to `/query` in one request.
    /// The server shares one engine pass (and any in-flight identical
    /// computations) across the batch and replies with
    /// `{"batch", "micros", "responses": [...]}` — one response object
    /// (or `{"error","status"}`) per query, in input order. Batches above
    /// the server's `max_batch` are refused with a structured
    /// `batch_too_large` 400.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn query_batch(&self, queries: Vec<Json>) -> io::Result<ClientResponse> {
        self.post("/query", &Json::Arr(queries))
    }

    /// `GET path`, returning the status and the **raw body text** — for
    /// non-JSON endpoints like the Prometheus `/metrics` exposition.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn get_text(&self, path: &str) -> io::Result<(u16, String)> {
        self.send_raw("GET", path, None)
    }

    fn send(&self, method: &str, path: &str, body: Option<String>) -> io::Result<ClientResponse> {
        let (status, body_text) = self.send_raw(method, path, body)?;
        let body = json::parse(&body_text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad body: {e}")))?;
        Ok(ClientResponse { status, body })
    }

    fn send_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<String>,
    ) -> io::Result<(u16, String)> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unresolvable address"))?;
        let mut stream = TcpStream::connect(addr)?;
        // The request goes out as one buffer; without Nagle it leaves now.
        let _ = stream.set_nodelay(true);
        let body = body.unwrap_or_default();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream.write_all(request.as_bytes())?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        // Skip headers; Connection: close means body runs to EOF.
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
                break;
            }
        }
        let mut body_text = String::new();
        reader.read_to_string(&mut body_text)?;
        Ok((status, body_text))
    }
}

/// Tunable [`PooledClient`] policy. The defaults reproduce the
/// historical hardcoded behavior (2 s connect timeout, one connect
/// retry, 60 s I/O budget); `serve --shard-connect-timeout-ms` /
/// `--shard-retries` / `--shard-io-timeout-ms` surface the first three
/// on the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// How long a TCP connect may take before the endpoint is declared
    /// unreachable for this attempt.
    pub connect_timeout: Duration,
    /// Per-call socket read/write budget. Shard queries carry real
    /// engine work, so the default is generous — it exists to bound a
    /// *dead or black-holed* peer, not to race a slow one.
    pub io_timeout: Duration,
    /// Extra connect attempts after the first failure (so `1` means "a
    /// dropped SYN never turns into a spurious `shard_unavailable`";
    /// `0` means one attempt, period).
    pub retries: u32,
    /// Consecutive failed calls after which an endpoint is ejected
    /// (demoted to last resort in [`PooledClient::post_replicas`]'s
    /// ordering until its probe window opens).
    pub eject_after: u32,
    /// How long an ejected endpoint sits out before it is re-admitted
    /// to its declared position for one probe call.
    pub probe_after: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(60),
            retries: 1,
            eject_after: 3,
            probe_after: Duration::from_secs(5),
        }
    }
}

/// Idle connections kept per endpoint. Small on purpose: every parked
/// keep-alive connection pins one worker on the shard server side.
const MAX_IDLE_PER_ENDPOINT: usize = 4;
/// Largest response body the client will buffer (matches the server's
/// own request cap). The `Content-Length` is remote-supplied: a
/// misconfigured endpoint pointing at an arbitrary service must produce
/// a structured error, not an allocation the size of whatever number it
/// sent.
const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;
/// Response status/header line length cap (same rationale).
const MAX_RESPONSE_LINE: usize = 64 * 1024;
/// Response header count cap.
const MAX_RESPONSE_HEADERS: usize = 100;

/// True for failures that mean the peer tore the connection down
/// (rather than timing out while computing): EOF, reset, or a broken
/// write. Only these — and only before any response byte, on a reused
/// connection — are safe to retry without risking duplicate work.
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WriteZero
    )
}

/// Reads one `\n`-terminated response line of bounded length.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    let n = (&mut *reader)
        .take(MAX_RESPONSE_LINE as u64)
        .read_line(line)
        .map_err(|e| io::Error::new(e.kind(), format!("reading response line: {e}")))?;
    if n >= MAX_RESPONSE_LINE && !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response line too long",
        ));
    }
    Ok(n)
}

/// Per-endpoint circuit-breaker state, keyed by `host:port` in the
/// client's health map. All fields are behind the health mutex.
#[derive(Debug, Default)]
struct EndpointHealth {
    /// Calls failed since the last success; reset to zero on success.
    consecutive_failures: u32,
    /// While `Some` and in the future, the endpoint is ejected: demoted
    /// to last resort in [`PooledClient::post_replicas`]'s try order.
    /// Once the instant passes, the endpoint is re-admitted for a probe.
    ejected_until: Option<Instant>,
    /// Times this endpoint has transitioned into the ejected state
    /// (including a failed probe re-ejecting it).
    ejections: u64,
    /// TCP connects attempted (counts retries; excludes pooled reuse).
    connect_attempts: u64,
}

/// A point-in-time copy of one endpoint's health for `/healthz` and
/// `/metrics` — see [`PooledClient::health_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointHealthSnapshot {
    /// The endpoint (`host:port`).
    pub endpoint: String,
    /// Calls failed since the last success.
    pub consecutive_failures: u32,
    /// Whether the endpoint is currently ejected (sidelined until its
    /// probe window opens).
    pub ejected: bool,
    /// Times this endpoint has been ejected over the client's lifetime.
    pub ejections: u64,
    /// TCP connects attempted (counts retries; excludes pooled reuse).
    pub connect_attempts: u64,
}

/// One entry in a [`ReplicaOutcome`]'s failover trail: which endpoint
/// was tried, how long the attempt took, and why it failed (if it did).
#[derive(Debug, Clone)]
pub struct ReplicaAttempt {
    /// The endpoint tried.
    pub endpoint: String,
    /// Wall-clock microseconds the attempt took (connect + round trip).
    pub micros: u64,
    /// `None` for the accepted attempt; the failure description
    /// otherwise (I/O error, or the caller's `accept` rejection).
    pub error: Option<String>,
}

/// What [`PooledClient::post_replicas`] observed: the full ordered
/// attempt trail, plus the accepted value and the endpoint that served
/// it when any replica succeeded. `accepted: None` means **every**
/// replica was attempted and failed — the per-attempt errors in
/// `attempts` are the operator's failover path.
#[derive(Debug)]
pub struct ReplicaOutcome<T> {
    /// Every attempt made, in try order (the accepted one last).
    pub attempts: Vec<ReplicaAttempt>,
    /// `(value, endpoint)` for the first accepted response.
    pub accepted: Option<(T, String)>,
}

/// A blocking HTTP/1.1 client that pools keep-alive connections per
/// endpoint (`host:port`). Safe to share across threads; the pool is a
/// simple mutex-guarded free list because checkouts are short and the
/// expensive part (the RPC round trip) happens outside the lock. The
/// separate health map drives [`post_replicas`](Self::post_replicas)
/// failover ordering.
pub struct PooledClient {
    idle: Mutex<HashMap<String, Vec<TcpStream>>>,
    config: ClientConfig,
    health: Mutex<BTreeMap<String, EndpointHealth>>,
}

impl Default for PooledClient {
    fn default() -> Self {
        Self::new()
    }
}

impl PooledClient {
    /// An empty pool with the default [`ClientConfig`].
    pub fn new() -> Self {
        Self::with_config(ClientConfig::default())
    }

    /// An empty pool with an explicit policy.
    pub fn with_config(config: ClientConfig) -> Self {
        Self {
            idle: Mutex::new(HashMap::new()),
            config,
            health: Mutex::new(BTreeMap::new()),
        }
    }

    /// The policy this client was built with.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// `POST path` with a JSON body against `endpoint` (`host:port`).
    ///
    /// Reuses a pooled connection when one is idle. Staleness is
    /// handled without ever duplicating work on a live shard:
    ///
    /// * a non-blocking peek at checkout discards sockets the server
    ///   already closed (the common case — the server enforces idle
    ///   deadlines on parked keep-alive connections);
    /// * if the server's close *races* the checkout (FIN still in
    ///   flight), the round trip fails with an EOF/reset **before any
    ///   response byte** — a server that closed the connection is not
    ///   computing the request, so exactly that failure class on a
    ///   *reused* connection is retried once on a fresh one;
    /// * a read **timeout** is never retried: the shard may simply be
    ///   slow, and re-sending would make it compute the same group
    ///   twice.
    ///
    /// A fresh *connect* failure is retried [`ClientConfig::retries`]
    /// times before giving up, so one dropped SYN never turns into a
    /// spurious `shard_unavailable`.
    ///
    /// # Errors
    /// Connect failures (after the retries), I/O failures, and
    /// malformed responses.
    pub fn post(&self, endpoint: &str, path: &str, body: &Json) -> io::Result<ClientResponse> {
        self.post_text(endpoint, path, &body.to_text())
    }

    fn post_text(&self, endpoint: &str, path: &str, text: &str) -> io::Result<ClientResponse> {
        if let Some(stream) = self.checkout(endpoint) {
            let mut saw_response_byte = false;
            match self.roundtrip(stream, endpoint, path, text, &mut saw_response_byte) {
                Ok(response) => return Ok(response),
                // Reused connection died before yielding a single
                // response byte: the request was never processed — safe
                // to re-send on a fresh connection.
                Err(e) if !saw_response_byte && is_disconnect(&e) => {}
                Err(e) => return Err(e),
            }
        }
        let mut stream = self.connect(endpoint);
        for _ in 0..self.config.retries {
            if stream.is_ok() {
                break;
            }
            stream = self.connect(endpoint);
        }
        self.roundtrip(stream?, endpoint, path, text, &mut false)
    }

    /// `POST path` against a replica list with health-checked failover.
    ///
    /// Replicas are tried in declared order, except that currently
    /// *ejected* endpoints (those that failed
    /// [`ClientConfig::eject_after`] consecutive calls and whose
    /// [`ClientConfig::probe_after`] window has not yet opened) are
    /// demoted to the back of the line. An attempt succeeds only when
    /// both the transport **and** the caller's `accept` closure accept
    /// the response — `accept` rejecting (say, a non-200 status or an
    /// unparsable payload) counts as an endpoint failure and failover
    /// moves on, exactly like a connect failure would. The call as a
    /// whole gives up only after **every** replica has been attempted,
    /// ejected or not: ordering is a latency preference, never a
    /// correctness decision.
    ///
    /// Infallible by construction — inspect
    /// [`ReplicaOutcome::accepted`] for the result and
    /// [`ReplicaOutcome::attempts`] for the full failover trail.
    pub fn post_replicas<T>(
        &self,
        replicas: &[String],
        path: &str,
        body: &Json,
        mut accept: impl FnMut(&ClientResponse) -> Result<T, String>,
    ) -> ReplicaOutcome<T> {
        let text = body.to_text();
        let mut attempts = Vec::with_capacity(replicas.len());
        for endpoint in self.plan(replicas) {
            let started = Instant::now();
            let verdict = match self.post_text(&endpoint, path, &text) {
                Ok(response) => accept(&response),
                Err(e) => Err(e.to_string()),
            };
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            match verdict {
                Ok(value) => {
                    self.record_success(&endpoint);
                    attempts.push(ReplicaAttempt {
                        endpoint: endpoint.clone(),
                        micros,
                        error: None,
                    });
                    return ReplicaOutcome {
                        attempts,
                        accepted: Some((value, endpoint)),
                    };
                }
                Err(why) => {
                    self.record_failure(&endpoint);
                    attempts.push(ReplicaAttempt {
                        endpoint,
                        micros,
                        error: Some(why),
                    });
                }
            }
        }
        ReplicaOutcome {
            attempts,
            accepted: None,
        }
    }

    /// The try order for one `post_replicas` call: non-ejected (and
    /// probe-due) endpoints in declared order, then still-ejected ones
    /// in declared order. Every replica appears exactly once.
    fn plan(&self, replicas: &[String]) -> Vec<String> {
        let now = Instant::now();
        let health = self.health.lock().expect("client health lock");
        let mut preferred = Vec::with_capacity(replicas.len());
        let mut sidelined = Vec::new();
        for endpoint in replicas {
            let ejected = health
                .get(endpoint)
                .and_then(|h| h.ejected_until)
                .is_some_and(|until| until > now);
            if ejected {
                sidelined.push(endpoint.clone());
            } else {
                preferred.push(endpoint.clone());
            }
        }
        preferred.extend(sidelined);
        preferred
    }

    fn record_success(&self, endpoint: &str) {
        let mut health = self.health.lock().expect("client health lock");
        let h = health.entry(endpoint.to_owned()).or_default();
        h.consecutive_failures = 0;
        h.ejected_until = None;
    }

    fn record_failure(&self, endpoint: &str) {
        let mut health = self.health.lock().expect("client health lock");
        let h = health.entry(endpoint.to_owned()).or_default();
        h.consecutive_failures += 1;
        if h.consecutive_failures >= self.config.eject_after {
            let now = Instant::now();
            // Count the transition into ejection — both the first one
            // and a failed probe pushing the endpoint back out.
            if h.ejected_until.is_none_or(|until| until <= now) {
                h.ejections += 1;
            }
            h.ejected_until = Some(now + self.config.probe_after);
        }
    }

    /// Health of every endpoint this client has ever dialed, in
    /// deterministic (lexicographic) endpoint order.
    pub fn health_snapshot(&self) -> Vec<EndpointHealthSnapshot> {
        let now = Instant::now();
        let health = self.health.lock().expect("client health lock");
        health
            .iter()
            .map(|(endpoint, h)| EndpointHealthSnapshot {
                endpoint: endpoint.clone(),
                consecutive_failures: h.consecutive_failures,
                ejected: h.ejected_until.is_some_and(|until| until > now),
                ejections: h.ejections,
                connect_attempts: h.connect_attempts,
            })
            .collect()
    }

    fn connect(&self, endpoint: &str) -> io::Result<TcpStream> {
        self.health
            .lock()
            .expect("client health lock")
            .entry(endpoint.to_owned())
            .or_default()
            .connect_attempts += 1;
        let addr = endpoint.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("unresolvable endpoint {endpoint}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// Pops pooled connections until one passes the staleness check.
    fn checkout(&self, endpoint: &str) -> Option<TcpStream> {
        loop {
            let stream = self
                .idle
                .lock()
                .expect("client pool lock")
                .get_mut(endpoint)?
                .pop()?;
            if !Self::is_stale(&stream) {
                return Some(stream);
            }
        }
    }

    /// True when an idle pooled connection must be discarded: the peer
    /// closed it (EOF), delivered unexpected bytes (protocol desync), or
    /// errored. A healthy idle connection has *nothing* to read, which
    /// the non-blocking peek reports as `WouldBlock`.
    fn is_stale(stream: &TcpStream) -> bool {
        if stream.set_nonblocking(true).is_err() {
            return true;
        }
        let mut probe = [0u8; 1];
        let stale =
            !matches!(stream.peek(&mut probe), Err(ref e) if e.kind() == io::ErrorKind::WouldBlock);
        stream.set_nonblocking(false).is_err() || stale
    }

    fn checkin(&self, endpoint: &str, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("client pool lock");
        let pool = idle.entry(endpoint.to_owned()).or_default();
        if pool.len() < MAX_IDLE_PER_ENDPOINT {
            pool.push(stream);
        }
    }

    /// One keep-alive request/response exchange. The response is framed
    /// by `Content-Length` (mandatory here — without it the connection
    /// cannot be reused), and the connection returns to the pool unless
    /// either side asked to close. `saw_response_byte` is raised the
    /// moment any response data arrives — the caller's retry policy
    /// hinges on it (a reply in progress must never be re-requested).
    fn roundtrip(
        &self,
        stream: TcpStream,
        endpoint: &str,
        path: &str,
        body: &str,
        saw_response_byte: &mut bool,
    ) -> io::Result<ClientResponse> {
        let request = format!(
            "POST {path} HTTP/1.1\r\nhost: {endpoint}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(request.as_bytes())?;

        let mut status_line = String::new();
        if read_bounded_line(&mut reader, &mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        *saw_response_byte = true;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;

        let mut content_length: Option<usize> = None;
        let mut keep_alive = true;
        let mut header_count = 0usize;
        loop {
            let mut line = String::new();
            if read_bounded_line(&mut reader, &mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            header_count += 1;
            if header_count > MAX_RESPONSE_HEADERS {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "too many response headers",
                ));
            }
            if let Some((k, v)) = line.split_once(':') {
                let (k, v) = (k.trim(), v.trim());
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = Some(v.parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("invalid content-length `{v}`"),
                        )
                    })?);
                } else if k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                }
            }
        }
        let content_length = content_length.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "response without content-length cannot be framed on a pooled connection",
            )
        })?;
        if content_length > MAX_RESPONSE_BODY {
            // The length is remote-supplied; a rogue value must become a
            // structured error, not an allocation of its choosing.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response body of {content_length} bytes exceeds the client cap"),
            ));
        }
        // Grow as bytes arrive rather than trusting the header for the
        // initial allocation.
        let mut body_bytes = Vec::with_capacity(content_length.min(64 * 1024));
        let mut chunk = [0u8; 64 * 1024];
        while body_bytes.len() < content_length {
            let want = (content_length - body_bytes.len()).min(chunk.len());
            match reader.read(&mut chunk[..want])? {
                0 => {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body"));
                }
                n => body_bytes.extend_from_slice(&chunk[..n]),
            }
        }
        let body_text = String::from_utf8(body_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not utf-8"))?;
        let body = json::parse(&body_text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad body: {e}")))?;

        if keep_alive {
            self.checkin(endpoint, reader.into_inner());
        }
        Ok(ClientResponse { status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Consumes one HTTP request (headers + content-length body) and
    /// writes one keep-alive JSON reply carrying `n`.
    fn serve_one(stream: &mut TcpStream, n: usize) {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        let reply_body = format!("{{\"n\":{n}}}");
        let reply = format!(
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{reply_body}",
            reply_body.len(),
        );
        stream.write_all(reply.as_bytes()).unwrap();
    }

    #[test]
    fn pooled_client_reuses_connections_and_recovers_from_stale_ones() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Connection 1: two requests back to back (proving reuse),
            // then the server closes it while it idles in the pool.
            let (mut a, _) = listener.accept().unwrap();
            serve_one(&mut a, 1);
            serve_one(&mut a, 2);
            drop(a);
            // Connection 2: the client's stale-retry lands here.
            let (mut b, _) = listener.accept().unwrap();
            serve_one(&mut b, 3);
        });

        let client = PooledClient::new();
        let body = Json::Obj(Vec::new());
        let first = client.post(&endpoint, "/shard/query", &body).unwrap();
        assert_eq!(first.body.get("n").unwrap().as_usize(), Some(1));
        assert_eq!(
            client.idle.lock().unwrap().get(&endpoint).map(Vec::len),
            Some(1),
            "the keep-alive connection returns to the pool"
        );
        let second = client.post(&endpoint, "/shard/query", &body).unwrap();
        assert_eq!(
            second.body.get("n").unwrap().as_usize(),
            Some(2),
            "the second call reuses connection 1"
        );
        // Give the server a moment to close the pooled connection, then
        // post again: the stale socket fails and the retry reconnects
        // (landing on connection 2).
        std::thread::sleep(Duration::from_millis(100));
        let third = client.post(&endpoint, "/shard/query", &body).unwrap();
        assert_eq!(third.body.get("n").unwrap().as_usize(), Some(3));
        server.join().unwrap();
    }

    #[test]
    fn pooled_client_rejects_rogue_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Consume the request headers + body, then claim a body far
            // beyond the client's cap.
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some((k, v)) = line.trim_end().split_once(':') {
                    if k.trim().eq_ignore_ascii_case("content-length") {
                        content_length = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 99999999999\r\n\r\n")
                .unwrap();
        });
        let client = PooledClient::new();
        let outcome = client.post(&endpoint, "/shard/query", &Json::Obj(Vec::new()));
        let err = outcome.expect_err("a rogue content-length must be refused");
        assert!(err.to_string().contains("exceeds the client cap"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn pooled_client_reports_dead_endpoints_quickly() {
        // Bind-then-drop guarantees nothing listens on the port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = listener.local_addr().unwrap().to_string();
        drop(listener);
        let client = PooledClient::new();
        let started = std::time::Instant::now();
        let outcome = client.post(&endpoint, "/shard/query", &Json::Obj(Vec::new()));
        assert!(outcome.is_err(), "a dead port must error, not hang");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "dead-endpoint detection took {:?}",
            started.elapsed()
        );
    }

    /// A dead (bind-then-dropped) endpoint for connect-policy tests.
    fn dead_endpoint() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = listener.local_addr().unwrap().to_string();
        drop(listener);
        endpoint
    }

    fn connect_attempts(client: &PooledClient, endpoint: &str) -> u64 {
        client
            .health_snapshot()
            .into_iter()
            .find(|s| s.endpoint == endpoint)
            .map(|s| s.connect_attempts)
            .unwrap_or(0)
    }

    #[test]
    fn connect_retries_honor_the_configured_upper_bound() {
        let endpoint = dead_endpoint();
        let client = PooledClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(200),
            retries: 3,
            ..ClientConfig::default()
        });
        let outcome = client.post(&endpoint, "/shard/query", &Json::Obj(Vec::new()));
        assert!(outcome.is_err());
        assert_eq!(
            connect_attempts(&client, &endpoint),
            4,
            "retries=3 means one initial attempt plus three retries"
        );
    }

    #[test]
    fn connect_retries_honor_the_configured_lower_bound() {
        let endpoint = dead_endpoint();
        let client = PooledClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(200),
            retries: 0,
            ..ClientConfig::default()
        });
        let outcome = client.post(&endpoint, "/shard/query", &Json::Obj(Vec::new()));
        assert!(outcome.is_err());
        assert_eq!(
            connect_attempts(&client, &endpoint),
            1,
            "retries=0 means exactly one attempt, period"
        );
    }

    #[test]
    fn configured_connect_timeout_bounds_total_latency() {
        // 10.255.255.1 is a reserved-range address that black-holes the
        // SYN on typical CI hosts, so the connect can only end by
        // timeout. If some exotic network answers immediately instead,
        // the refusal is still fast and the bound below still holds.
        let client = PooledClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(150),
            retries: 1,
            ..ClientConfig::default()
        });
        let started = std::time::Instant::now();
        let outcome = client.post("10.255.255.1:9", "/shard/query", &Json::Obj(Vec::new()));
        assert!(outcome.is_err());
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "two 150 ms connect attempts must finish well under the old \
             hardcoded 2 s budget, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn post_replicas_fails_over_and_names_every_attempt() {
        let dead = dead_endpoint();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let live = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            serve_one(&mut s, 7);
        });
        let client = PooledClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(200),
            retries: 0,
            ..ClientConfig::default()
        });
        let replicas = vec![dead.clone(), live.clone()];
        let outcome =
            client.post_replicas(&replicas, "/shard/query", &Json::Obj(Vec::new()), |r| {
                r.body
                    .get("n")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| "missing n".to_owned())
            });
        server.join().unwrap();
        let (value, served_by) = outcome.accepted.expect("the live replica must serve");
        assert_eq!(value, 7);
        assert_eq!(served_by, live);
        let trail: Vec<&str> = outcome
            .attempts
            .iter()
            .map(|a| a.endpoint.as_str())
            .collect();
        assert_eq!(trail, vec![dead.as_str(), live.as_str()]);
        assert!(outcome.attempts[0].error.is_some(), "dead attempt is named");
        assert!(outcome.attempts[1].error.is_none());
    }

    #[test]
    fn post_replicas_counts_rejected_responses_as_endpoint_failures() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let bad = listener.local_addr().unwrap().to_string();
        let listener_ok = TcpListener::bind("127.0.0.1:0").unwrap();
        let good = listener_ok.local_addr().unwrap().to_string();
        let t1 = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            serve_one(&mut s, 0); // transport-valid, but `accept` rejects n=0
        });
        let t2 = std::thread::spawn(move || {
            let (mut s, _) = listener_ok.accept().unwrap();
            serve_one(&mut s, 5);
        });
        let client = PooledClient::new();
        let replicas = vec![bad.clone(), good];
        let outcome = client.post_replicas(
            &replicas,
            "/shard/query",
            &Json::Obj(Vec::new()),
            |r| match r.body.get("n").and_then(Json::as_usize) {
                Some(n) if n > 0 => Ok(n),
                _ => Err("rejected by accept".to_owned()),
            },
        );
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(outcome.accepted.map(|(n, _)| n), Some(5));
        assert_eq!(outcome.attempts.len(), 2);
        assert_eq!(
            outcome.attempts[0].error.as_deref(),
            Some("rejected by accept"),
            "an accept rejection reads like any other endpoint failure"
        );
        let bad_health = client
            .health_snapshot()
            .into_iter()
            .find(|s| s.endpoint == bad)
            .unwrap();
        assert_eq!(bad_health.consecutive_failures, 1);
    }

    #[test]
    fn ejection_demotes_an_endpoint_until_its_probe_window_opens() {
        let dead = dead_endpoint();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let live = listener.local_addr().unwrap().to_string();
        let client = PooledClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(100),
            retries: 0,
            eject_after: 2,
            probe_after: Duration::from_millis(150),
            ..ClientConfig::default()
        });
        let replicas = vec![dead.clone(), live.clone()];

        // Two failing calls eject the dead primary...
        for expected_n in [1, 2] {
            let l = listener.try_clone().unwrap();
            let server = std::thread::spawn(move || {
                let (mut s, _) = l.accept().unwrap();
                serve_one(&mut s, expected_n);
            });
            let outcome =
                client.post_replicas(&replicas, "/shard/query", &Json::Obj(Vec::new()), |r| {
                    r.body
                        .get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| "missing n".to_owned())
                });
            server.join().unwrap();
            assert_eq!(outcome.attempts[0].endpoint, dead, "primary tried first");
            assert_eq!(outcome.accepted.as_ref().map(|(n, _)| *n), Some(expected_n));
        }
        let snap = client
            .health_snapshot()
            .into_iter()
            .find(|s| s.endpoint == dead)
            .unwrap();
        assert!(snap.ejected, "two consecutive failures ejected the primary");
        assert_eq!(snap.ejections, 1);

        // ...so the next call goes straight to the healthy fallback
        // without paying the dead primary's connect timeout.
        assert_eq!(client.plan(&replicas), vec![live.clone(), dead.clone()]);

        // Once the probe window opens, the primary is re-admitted to
        // its declared position for one probe call.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(client.plan(&replicas), vec![dead.clone(), live.clone()]);

        // A successful probe fully reinstates it.
        drop(listener);
        let probe_listener = TcpListener::bind(dead.as_str());
        if let Ok(probe_listener) = probe_listener {
            // The OS let us rebind the primary's port: prove recovery
            // end to end. (Port reuse can race on busy CI — the state
            // machine above is the load-bearing assertion.)
            let server = std::thread::spawn(move || {
                let (mut s, _) = probe_listener.accept().unwrap();
                serve_one(&mut s, 9);
            });
            let outcome =
                client.post_replicas(&replicas, "/shard/query", &Json::Obj(Vec::new()), |r| {
                    r.body
                        .get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| "missing n".to_owned())
                });
            server.join().unwrap();
            assert_eq!(outcome.accepted, Some((9, dead.clone())));
            let snap = client
                .health_snapshot()
                .into_iter()
                .find(|s| s.endpoint == dead)
                .unwrap();
            assert!(!snap.ejected, "a successful probe reinstates the endpoint");
            assert_eq!(snap.consecutive_failures, 0);
        }
    }

    #[test]
    fn post_replicas_still_tries_ejected_endpoints_as_a_last_resort() {
        let dead = dead_endpoint();
        let client = PooledClient::with_config(ClientConfig {
            connect_timeout: Duration::from_millis(100),
            retries: 0,
            eject_after: 1,
            probe_after: Duration::from_secs(60),
            ..ClientConfig::default()
        });
        let replicas = vec![dead.clone()];
        for round in 1..=3 {
            let outcome =
                client.post_replicas(&replicas, "/shard/query", &Json::Obj(Vec::new()), |_| {
                    Ok::<usize, String>(0)
                });
            assert!(outcome.accepted.is_none());
            assert_eq!(
                outcome.attempts.len(),
                1,
                "round {round}: even a deeply ejected endpoint is attempted \
                 when it is all there is"
            );
        }
    }
}
