//! Blocking HTTP/JSON clients for the server.
//!
//! [`Client`] is the simple one-connection-per-call client used by the
//! integration tests and handy for scripting. [`PooledClient`] is the
//! router-side RPC client for multi-machine sharding: it keeps a small
//! pool of keep-alive connections per shard endpoint (remote shard
//! fan-out happens on every cache miss, so a TCP handshake per RPC
//! would dominate small queries), frames responses by `Content-Length`
//! instead of connection close, and retries once on connect failure
//! before reporting a shard unreachable.

use crate::json::{self, Json};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// A parsed response: status code plus JSON body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The parsed JSON response body.
    pub body: Json,
}

impl ClientResponse {
    /// Panics with the server's error body unless the status is 2xx —
    /// for tests and scripts where any failure is fatal anyway.
    pub fn expect_ok(self, context: &str) -> Json {
        assert!(
            (200..300).contains(&self.status),
            "{context}: status {} body {}",
            self.status,
            self.body.to_text()
        );
        self.body
    }
}

/// A blocking client bound to one server address. Each call opens a
/// fresh connection (`Connection: close`), which keeps the client free
/// of pooling state and exercises the server's accept path.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the server at `addr` (anything printable as
    /// `host:port`).
    pub fn new(addr: impl ToString) -> Self {
        Self {
            addr: addr.to_string(),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn get(&self, path: &str) -> io::Result<ClientResponse> {
        self.send("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn post(&self, path: &str, body: &Json) -> io::Result<ClientResponse> {
        self.send("POST", path, Some(body.to_text()))
    }

    /// Posts a whole batch of query objects to `/query` in one request.
    /// The server shares one engine pass (and any in-flight identical
    /// computations) across the batch and replies with
    /// `{"batch", "micros", "responses": [...]}` — one response object
    /// (or `{"error","status"}`) per query, in input order. Batches above
    /// the server's `max_batch` are refused with a structured
    /// `batch_too_large` 400.
    ///
    /// # Errors
    /// I/O failures and malformed responses.
    pub fn query_batch(&self, queries: Vec<Json>) -> io::Result<ClientResponse> {
        self.post("/query", &Json::Arr(queries))
    }

    /// `GET path`, returning the status and the **raw body text** — for
    /// non-JSON endpoints like the Prometheus `/metrics` exposition.
    ///
    /// # Errors
    /// Propagates socket failures.
    pub fn get_text(&self, path: &str) -> io::Result<(u16, String)> {
        self.send_raw("GET", path, None)
    }

    fn send(&self, method: &str, path: &str, body: Option<String>) -> io::Result<ClientResponse> {
        let (status, body_text) = self.send_raw(method, path, body)?;
        let body = json::parse(&body_text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad body: {e}")))?;
        Ok(ClientResponse { status, body })
    }

    fn send_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<String>,
    ) -> io::Result<(u16, String)> {
        let addr = self
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unresolvable address"))?;
        let mut stream = TcpStream::connect(addr)?;
        // The request goes out as one buffer; without Nagle it leaves now.
        let _ = stream.set_nodelay(true);
        let body = body.unwrap_or_default();
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream.write_all(request.as_bytes())?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        // Skip headers; Connection: close means body runs to EOF.
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
                break;
            }
        }
        let mut body_text = String::new();
        reader.read_to_string(&mut body_text)?;
        Ok((status, body_text))
    }
}

/// How long [`PooledClient`] waits for a TCP connect before declaring
/// the endpoint unreachable (each failed connect is retried once).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// Per-call socket read/write budget. Shard queries carry real engine
/// work, so this is generous — it exists to bound a *dead* peer, not to
/// race a slow one.
const IO_TIMEOUT: Duration = Duration::from_secs(60);
/// Idle connections kept per endpoint. Small on purpose: every parked
/// keep-alive connection pins one worker on the shard server side.
const MAX_IDLE_PER_ENDPOINT: usize = 4;
/// Largest response body the client will buffer (matches the server's
/// own request cap). The `Content-Length` is remote-supplied: a
/// misconfigured endpoint pointing at an arbitrary service must produce
/// a structured error, not an allocation the size of whatever number it
/// sent.
const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;
/// Response status/header line length cap (same rationale).
const MAX_RESPONSE_LINE: usize = 64 * 1024;
/// Response header count cap.
const MAX_RESPONSE_HEADERS: usize = 100;

/// True for failures that mean the peer tore the connection down
/// (rather than timing out while computing): EOF, reset, or a broken
/// write. Only these — and only before any response byte, on a reused
/// connection — are safe to retry without risking duplicate work.
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WriteZero
    )
}

/// Reads one `\n`-terminated response line of bounded length.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> io::Result<usize> {
    let n = (&mut *reader)
        .take(MAX_RESPONSE_LINE as u64)
        .read_line(line)
        .map_err(|e| io::Error::new(e.kind(), format!("reading response line: {e}")))?;
    if n >= MAX_RESPONSE_LINE && !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "response line too long",
        ));
    }
    Ok(n)
}

/// A blocking HTTP/1.1 client that pools keep-alive connections per
/// endpoint (`host:port`). Safe to share across threads; the pool is a
/// simple mutex-guarded free list because checkouts are short and the
/// expensive part (the RPC round trip) happens outside the lock.
pub struct PooledClient {
    idle: Mutex<HashMap<String, Vec<TcpStream>>>,
}

impl Default for PooledClient {
    fn default() -> Self {
        Self::new()
    }
}

impl PooledClient {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            idle: Mutex::new(HashMap::new()),
        }
    }

    /// `POST path` with a JSON body against `endpoint` (`host:port`).
    ///
    /// Reuses a pooled connection when one is idle. Staleness is
    /// handled without ever duplicating work on a live shard:
    ///
    /// * a non-blocking peek at checkout discards sockets the server
    ///   already closed (the common case — the server enforces idle
    ///   deadlines on parked keep-alive connections);
    /// * if the server's close *races* the checkout (FIN still in
    ///   flight), the round trip fails with an EOF/reset **before any
    ///   response byte** — a server that closed the connection is not
    ///   computing the request, so exactly that failure class on a
    ///   *reused* connection is retried once on a fresh one;
    /// * a read **timeout** is never retried: the shard may simply be
    ///   slow, and re-sending would make it compute the same group
    ///   twice.
    ///
    /// A fresh *connect* failure is also retried once before giving up,
    /// so one dropped SYN never turns into a spurious
    /// `shard_unavailable`.
    ///
    /// # Errors
    /// Connect failures (after the retry), I/O failures, and malformed
    /// responses.
    pub fn post(&self, endpoint: &str, path: &str, body: &Json) -> io::Result<ClientResponse> {
        let text = body.to_text();
        if let Some(stream) = self.checkout(endpoint) {
            let mut saw_response_byte = false;
            match self.roundtrip(stream, endpoint, path, &text, &mut saw_response_byte) {
                Ok(response) => return Ok(response),
                // Reused connection died before yielding a single
                // response byte: the request was never processed — safe
                // to re-send on a fresh connection.
                Err(e) if !saw_response_byte && is_disconnect(&e) => {}
                Err(e) => return Err(e),
            }
        }
        let stream = match Self::connect(endpoint) {
            Ok(stream) => stream,
            Err(_first_failure) => Self::connect(endpoint)?,
        };
        self.roundtrip(stream, endpoint, path, &text, &mut false)
    }

    fn connect(endpoint: &str) -> io::Result<TcpStream> {
        let addr = endpoint.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("unresolvable endpoint {endpoint}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// Pops pooled connections until one passes the staleness check.
    fn checkout(&self, endpoint: &str) -> Option<TcpStream> {
        loop {
            let stream = self
                .idle
                .lock()
                .expect("client pool lock")
                .get_mut(endpoint)?
                .pop()?;
            if !Self::is_stale(&stream) {
                return Some(stream);
            }
        }
    }

    /// True when an idle pooled connection must be discarded: the peer
    /// closed it (EOF), delivered unexpected bytes (protocol desync), or
    /// errored. A healthy idle connection has *nothing* to read, which
    /// the non-blocking peek reports as `WouldBlock`.
    fn is_stale(stream: &TcpStream) -> bool {
        if stream.set_nonblocking(true).is_err() {
            return true;
        }
        let mut probe = [0u8; 1];
        let stale =
            !matches!(stream.peek(&mut probe), Err(ref e) if e.kind() == io::ErrorKind::WouldBlock);
        stream.set_nonblocking(false).is_err() || stale
    }

    fn checkin(&self, endpoint: &str, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("client pool lock");
        let pool = idle.entry(endpoint.to_owned()).or_default();
        if pool.len() < MAX_IDLE_PER_ENDPOINT {
            pool.push(stream);
        }
    }

    /// One keep-alive request/response exchange. The response is framed
    /// by `Content-Length` (mandatory here — without it the connection
    /// cannot be reused), and the connection returns to the pool unless
    /// either side asked to close. `saw_response_byte` is raised the
    /// moment any response data arrives — the caller's retry policy
    /// hinges on it (a reply in progress must never be re-requested).
    fn roundtrip(
        &self,
        stream: TcpStream,
        endpoint: &str,
        path: &str,
        body: &str,
        saw_response_byte: &mut bool,
    ) -> io::Result<ClientResponse> {
        let request = format!(
            "POST {path} HTTP/1.1\r\nhost: {endpoint}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        );
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(request.as_bytes())?;

        let mut status_line = String::new();
        if read_bounded_line(&mut reader, &mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        *saw_response_byte = true;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;

        let mut content_length: Option<usize> = None;
        let mut keep_alive = true;
        let mut header_count = 0usize;
        loop {
            let mut line = String::new();
            if read_bounded_line(&mut reader, &mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            header_count += 1;
            if header_count > MAX_RESPONSE_HEADERS {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "too many response headers",
                ));
            }
            if let Some((k, v)) = line.split_once(':') {
                let (k, v) = (k.trim(), v.trim());
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = Some(v.parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("invalid content-length `{v}`"),
                        )
                    })?);
                } else if k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                }
            }
        }
        let content_length = content_length.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "response without content-length cannot be framed on a pooled connection",
            )
        })?;
        if content_length > MAX_RESPONSE_BODY {
            // The length is remote-supplied; a rogue value must become a
            // structured error, not an allocation of its choosing.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response body of {content_length} bytes exceeds the client cap"),
            ));
        }
        // Grow as bytes arrive rather than trusting the header for the
        // initial allocation.
        let mut body_bytes = Vec::with_capacity(content_length.min(64 * 1024));
        let mut chunk = [0u8; 64 * 1024];
        while body_bytes.len() < content_length {
            let want = (content_length - body_bytes.len()).min(chunk.len());
            match reader.read(&mut chunk[..want])? {
                0 => {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body"));
                }
                n => body_bytes.extend_from_slice(&chunk[..n]),
            }
        }
        let body_text = String::from_utf8(body_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not utf-8"))?;
        let body = json::parse(&body_text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad body: {e}")))?;

        if keep_alive {
            self.checkin(endpoint, reader.into_inner());
        }
        Ok(ClientResponse { status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Consumes one HTTP request (headers + content-length body) and
    /// writes one keep-alive JSON reply carrying `n`.
    fn serve_one(stream: &mut TcpStream, n: usize) {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        let reply_body = format!("{{\"n\":{n}}}");
        let reply = format!(
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{reply_body}",
            reply_body.len(),
        );
        stream.write_all(reply.as_bytes()).unwrap();
    }

    #[test]
    fn pooled_client_reuses_connections_and_recovers_from_stale_ones() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Connection 1: two requests back to back (proving reuse),
            // then the server closes it while it idles in the pool.
            let (mut a, _) = listener.accept().unwrap();
            serve_one(&mut a, 1);
            serve_one(&mut a, 2);
            drop(a);
            // Connection 2: the client's stale-retry lands here.
            let (mut b, _) = listener.accept().unwrap();
            serve_one(&mut b, 3);
        });

        let client = PooledClient::new();
        let body = Json::Obj(Vec::new());
        let first = client.post(&endpoint, "/shard/query", &body).unwrap();
        assert_eq!(first.body.get("n").unwrap().as_usize(), Some(1));
        assert_eq!(
            client.idle.lock().unwrap().get(&endpoint).map(Vec::len),
            Some(1),
            "the keep-alive connection returns to the pool"
        );
        let second = client.post(&endpoint, "/shard/query", &body).unwrap();
        assert_eq!(
            second.body.get("n").unwrap().as_usize(),
            Some(2),
            "the second call reuses connection 1"
        );
        // Give the server a moment to close the pooled connection, then
        // post again: the stale socket fails and the retry reconnects
        // (landing on connection 2).
        std::thread::sleep(Duration::from_millis(100));
        let third = client.post(&endpoint, "/shard/query", &body).unwrap();
        assert_eq!(third.body.get("n").unwrap().as_usize(), Some(3));
        server.join().unwrap();
    }

    #[test]
    fn pooled_client_rejects_rogue_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Consume the request headers + body, then claim a body far
            // beyond the client's cap.
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.trim_end().is_empty() {
                    break;
                }
                if let Some((k, v)) = line.trim_end().split_once(':') {
                    if k.trim().eq_ignore_ascii_case("content-length") {
                        content_length = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 99999999999\r\n\r\n")
                .unwrap();
        });
        let client = PooledClient::new();
        let outcome = client.post(&endpoint, "/shard/query", &Json::Obj(Vec::new()));
        let err = outcome.expect_err("a rogue content-length must be refused");
        assert!(err.to_string().contains("exceeds the client cap"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn pooled_client_reports_dead_endpoints_quickly() {
        // Bind-then-drop guarantees nothing listens on the port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let endpoint = listener.local_addr().unwrap().to_string();
        drop(listener);
        let client = PooledClient::new();
        let started = std::time::Instant::now();
        let outcome = client.post(&endpoint, "/shard/query", &Json::Obj(Vec::new()));
        assert!(outcome.is_err(), "a dead port must error, not hang");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "dead-endpoint detection took {:?}",
            started.elapsed()
        );
    }
}
