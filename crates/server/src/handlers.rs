//! Route handlers tying the catalog, the query cache (with its
//! singleflight latch), the shared compute pool, and the sharded engine
//! together behind the JSON protocol.
//!
//! `POST /query` accepts a single query object or an array of them. A
//! batch is planned per item, deduplicated through the cache's
//! singleflight lookup (identical queries within the batch — or racing in
//! from other requests — collapse onto one computation), and the cache
//! misses are grouped per `(dataset, options)`. Each group then fans out
//! as **one compute-pool task per engine shard** (each task a
//! [`shapesearch_core::ShapeEngine::top_k_batch`] pass over that shard's
//! partition, so the GROUP stage still runs once per trendline for the
//! whole group) and the per-shard top-k partials merge deterministically
//! — one query can saturate every core, while a giant batch decomposes
//! into short shard tasks that interleave fairly with other requests on
//! the same pool.

use crate::cache::{CacheKey, Lookup, QueryCache};
use crate::catalog::{Catalog, DataSource, DatasetEntry, ShardPlacement, REGISTRY_TTL_SECS};
use crate::client::{EndpointHealthSnapshot, PooledClient};
use crate::compute::ComputePool;
use crate::error::ServerError;
use crate::http::{Request, Response};
use crate::json::{self, obj, Json};
use crate::obs::{self, Span};
use crate::protocol;
use shapesearch_core::{
    merge_topk_refs, EngineOptions, EngineStage, PruningSnapshot, ShapeQuery, SharedThresholds,
    StageObserver, TopKResult,
};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The crate version baked into `/healthz` and `/metrics` build info.
fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The git revision baked in at compile time (`SHAPESEARCH_GIT_REV`,
/// stamped by CI/release builds), or `"unknown"` for plain builds.
fn build_git_rev() -> &'static str {
    option_env!("SHAPESEARCH_GIT_REV").unwrap_or("unknown")
}

/// Aggregate **local** shard-execution gauges for `/healthz`. One mutex
/// guards both fields, and every fan-out records them in a single
/// critical section, so a snapshot can never be mutually inconsistent
/// mid-update (e.g. tasks from one batch without its micros). Remote
/// shard RPCs are tracked separately in [`RemoteShardStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Local shard tasks executed (one per local shard per query group).
    pub tasks: u64,
    /// Total engine-side microseconds spent in local shard tasks.
    pub micros_total: u64,
}

/// Per-endpoint remote-shard RPC gauges for the `/healthz`
/// `remote_shards` block. Every RPC records all three fields in one
/// critical section of the shared map's mutex, so the block is a
/// consistent snapshot like the other healthz gauges.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RemoteShardStats {
    /// RPC attempts sent to this endpoint — one per *replica attempt*,
    /// so a failover that tries two replicas books one request on each
    /// (a connect-retry pair within one attempt still counts once).
    pub requests: u64,
    /// Attempts that failed (unreachable endpoint, non-200 reply, or a
    /// malformed body). A failed attempt makes failover move on to the
    /// shard's next replica; only when every replica fails does the
    /// caller see a `shard_unavailable` error naming each attempt.
    pub errors: u64,
    /// Total round-trip microseconds spent on this endpoint's RPCs
    /// (network plus the remote engine time).
    pub micros_total: u64,
}

/// Shared application state, one per server.
pub struct AppState {
    /// Registered datasets with their hot, immutable sharded engines.
    pub catalog: Catalog,
    /// Query-result LRU with singleflight request coalescing.
    pub cache: QueryCache,
    /// The shared compute pool shard tasks fan out on (HTTP workers
    /// submit to it and help drain it while they wait).
    pub compute: ComputePool,
    /// The connection-pooled RPC client remote shard tasks go out on.
    pub remote: PooledClient,
    /// Consistent-snapshot local shard gauges for `/healthz`.
    pub shard_stats: Mutex<ShardStats>,
    /// Process-lifetime §6.3 pruning gauges for `/healthz` (aggregated
    /// per computation from the engine's shared counters; local engine
    /// work only — a remote shard's counters show on *its* healthz).
    pub pruning: Mutex<PruningSnapshot>,
    /// Per-endpoint remote-shard RPC gauges for `/healthz`, keyed and
    /// reported in endpoint order (a `BTreeMap` so the block serializes
    /// deterministically).
    pub remote_stats: Mutex<BTreeMap<String, RemoteShardStats>>,
    /// Total queries received (each batch item counts once).
    pub queries: AtomicU64,
    /// Total `POST /shard/query` RPCs served (this process acting as a
    /// shard server); kept apart from `queries` so a router's fan-in
    /// doesn't inflate a shard server's user-facing query count.
    pub shard_queries: AtomicU64,
    /// Per-dataset engine defaults; requests may override per call.
    pub default_options: EngineOptions,
    /// Worker-pool size, echoed in `/healthz`.
    pub workers: usize,
    /// Maximum number of queries one `POST /query` batch may carry;
    /// larger batches get a structured `batch_too_large` 400.
    pub max_batch: usize,
    /// Directory that `POST /datasets` `path` sources must live under.
    /// `None` (the default) disables path registration over HTTP
    /// entirely — otherwise any network client could read arbitrary
    /// server-local files. In-process registration (CLI preload) is
    /// unrestricted.
    pub data_root: Option<PathBuf>,
    /// The latency histogram registry `GET /metrics` exposes: request
    /// and per-stage duration histograms plus per-endpoint RPC series.
    /// Assembled from the same counters `/healthz` reads, so the two
    /// endpoints always reconcile.
    pub metrics: obs::Metrics,
    /// Process start (monotonic), for `uptime_secs`.
    pub started: Instant,
    /// Process start as Unix epoch seconds, for `started_at`.
    pub started_at_epoch: u64,
    /// `POST /query` requests slower than this many microseconds emit a
    /// structured `slow-query` stderr line carrying the trace ID; `0`
    /// disables the log.
    pub slow_query_micros: u64,
    /// Connection counters maintained by the evented HTTP core, exposed
    /// in the `/healthz` `connections` block and the
    /// `shapesearch_connections_*` metrics series. Shared with
    /// [`crate::http::serve`] through [`crate::http::HttpConfig`].
    pub conn_stats: Arc<crate::http::ConnStats>,
}

impl AppState {
    /// Builds fresh state: an empty catalog whose registrations default
    /// to `shards` engine shards (0 = auto: available parallelism), a
    /// cold cache of `cache_capacity` entries, a compute pool of
    /// `workers` threads, and the default batch cap
    /// ([`protocol::MAX_BATCH_SIZE`]).
    pub fn new(
        cache_capacity: usize,
        workers: usize,
        data_root: Option<PathBuf>,
        shards: usize,
    ) -> Self {
        Self {
            catalog: Catalog::with_default_shards(shards),
            cache: QueryCache::new(cache_capacity),
            compute: ComputePool::new(workers),
            remote: PooledClient::new(),
            shard_stats: Mutex::new(ShardStats::default()),
            pruning: Mutex::new(PruningSnapshot::default()),
            remote_stats: Mutex::new(BTreeMap::new()),
            queries: AtomicU64::new(0),
            shard_queries: AtomicU64::new(0),
            default_options: EngineOptions::default(),
            workers,
            max_batch: protocol::MAX_BATCH_SIZE,
            data_root,
            metrics: obs::Metrics::new(),
            started: Instant::now(),
            started_at_epoch: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            slow_query_micros: 0,
            conn_stats: Arc::new(crate::http::ConnStats::default()),
        }
    }

    /// A consistent snapshot of the shard gauges.
    pub fn shard_stats(&self) -> ShardStats {
        *self.shard_stats.lock().expect("shard stats lock")
    }
}

/// Validates an HTTP-supplied `path` source against the configured data
/// root. Canonicalizes both sides so `..` hops and symlinks can't
/// escape the sandbox, and returns the canonicalized path — the caller
/// must load *that*, not the client's original string, or a symlink
/// swapped in between check and open would re-escape (TOCTOU).
fn check_path_source(path: &str, data_root: Option<&Path>) -> Result<PathBuf, ServerError> {
    let Some(root) = data_root else {
        return Err(ServerError::bad_request(
            "`path`/`snapshot` registration over HTTP is disabled; start the server \
             with --data-root, or send the data inline via `csv`/`jsonl`",
        ));
    };
    let root = root
        .canonicalize()
        .map_err(|e| ServerError::internal(format!("data root unusable: {e}")))?;
    let resolved = Path::new(path)
        .canonicalize()
        .map_err(|e| ServerError::bad_request(format!("loading dataset: {e}")))?;
    if !resolved.starts_with(&root) {
        return Err(ServerError::bad_request(format!(
            "`path` must be under the data root {}",
            root.display()
        )));
    }
    Ok(resolved)
}

fn ok(body: Json) -> Response {
    Response::json(200, body.to_text())
}

fn fail(err: &ServerError) -> Response {
    Response::json(err.status, protocol::error_to_json(err).to_text())
}

/// Dispatches one request. Unknown routes get 404, wrong methods 405.
/// Query strings are ignored for routing (`/healthz?verbose=1` is
/// `/healthz`).
pub fn route(state: &Arc<AppState>, request: &Request) -> Response {
    let path = request.path.split('?').next().unwrap_or("");
    let result = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok(healthz(state)),
        ("GET", "/metrics") => Ok(metrics(state)),
        ("GET", "/datasets") => Ok(list_datasets(state)),
        ("POST", "/datasets") => register_dataset(state, request),
        ("POST", "/query") => query(state, request),
        ("POST", "/shard/query") => shard_query(state, request),
        ("POST", "/registry/heartbeat") => registry_heartbeat(state, request),
        ("GET", "/registry") => Ok(registry_list(state)),
        (
            _,
            "/healthz"
            | "/metrics"
            | "/datasets"
            | "/query"
            | "/shard/query"
            | "/registry"
            | "/registry/heartbeat",
        ) => Err(ServerError {
            status: 405,
            message: format!("method {} not allowed here", request.method),
            code: None,
        }),
        _ => Err(ServerError::not_found(format!(
            "no route {} {}",
            request.method, request.path
        ))),
    };
    result.unwrap_or_else(|e| fail(&e))
}

fn body_json(request: &Request) -> Result<Json, ServerError> {
    let text = request
        .body_text()
        .map_err(|_| ServerError::bad_request("body is not utf-8"))?;
    json::parse(text).map_err(|e| ServerError::bad_request(format!("invalid JSON body: {e}")))
}

fn healthz(state: &Arc<AppState>) -> Response {
    // Each block is one consistent snapshot: the cache counters come
    // from a single lock acquisition (hits + misses + coalesced ==
    // lookups in every reply), the shard gauges from another, and the
    // per-dataset shard totals from one pass under the catalog's read
    // lock.
    let stats = state.cache.stats();
    let shard_stats = state.shard_stats();
    let pruning = *state.pruning.lock().expect("pruning stats lock");
    let snapshots = state.catalog.resident().stats();
    let dataset_shards: usize = state.catalog.list().iter().map(|e| e.shard_count).sum();
    // The remote gauges are one consistent snapshot too: every RPC
    // records requests/errors/micros inside one critical section of this
    // map's lock, and the whole block is read under one acquisition.
    // The failover client's per-endpoint health (consecutive failures,
    // ejection state, ejection count) is a second snapshot, merged by
    // endpoint — the union of keys, since an endpoint can have been
    // dialed (health) without ever completing an RPC (stats), and
    // vice versa after a restart.
    let mut remote: BTreeMap<String, RemoteShardStats> = state
        .remote_stats
        .lock()
        .expect("remote stats lock")
        .iter()
        .map(|(endpoint, s)| (endpoint.clone(), *s))
        .collect();
    let health: BTreeMap<String, EndpointHealthSnapshot> = state
        .remote
        .health_snapshot()
        .into_iter()
        .map(|h| (h.endpoint.clone(), h))
        .collect();
    for endpoint in health.keys() {
        remote.entry(endpoint.clone()).or_default();
    }
    // Registry staleness: one consistent snapshot of every announced
    // shard slot with the age of its freshest and stalest heartbeat, so
    // an operator can see a replica about to fall out of the TTL before
    // a registry-placed registration starts failing.
    let registry_slots = state.catalog.registry().slot_staleness();
    let registry_stale_slots = registry_slots
        .iter()
        .filter(|s| s.fresh_replicas == 0)
        .count();
    let remote_totals =
        remote
            .values()
            .fold(RemoteShardStats::default(), |acc, s| RemoteShardStats {
                requests: acc.requests + s.requests,
                errors: acc.errors + s.errors,
                micros_total: acc.micros_total + s.micros_total,
            });
    let ejections_total: u64 = health.values().map(|h| h.ejections).sum();
    ok(obj([
        ("status", "ok".into()),
        ("version", build_version().into()),
        ("git_rev", build_git_rev().into()),
        ("uptime_secs", state.started.elapsed().as_secs().into()),
        ("started_at", state.started_at_epoch.into()),
        ("datasets", state.catalog.len().into()),
        ("queries", state.queries.load(Ordering::Relaxed).into()),
        ("workers", state.workers.into()),
        ("max_batch", state.max_batch.into()),
        (
            "cache",
            obj([
                ("lookups", stats.lookups.into()),
                ("hits", stats.hits.into()),
                ("misses", stats.misses.into()),
                ("coalesced", stats.coalesced.into()),
                ("entries", stats.entries.into()),
                ("capacity", stats.capacity.into()),
            ]),
        ),
        (
            "shards",
            obj([
                ("default", state.catalog.default_shards().into()),
                ("dataset_shards", dataset_shards.into()),
                ("compute_workers", state.compute.workers().into()),
                ("tasks", shard_stats.tasks.into()),
                ("micros_total", shard_stats.micros_total.into()),
                (
                    "shard_queries",
                    state.shard_queries.load(Ordering::Relaxed).into(),
                ),
            ]),
        ),
        ("pruning", protocol::pruning_to_json(pruning)),
        (
            "snapshots",
            obj([
                ("resident", snapshots.resident.into()),
                ("capacity", snapshots.capacity.into()),
                ("resident_bytes", snapshots.resident_bytes.into()),
                ("capacity_bytes", snapshots.capacity_bytes.into()),
                ("loads", snapshots.loads.into()),
                ("evictions", snapshots.evictions.into()),
                ("load_micros_total", snapshots.load_micros_total.into()),
            ]),
        ),
        (
            "connections",
            obj([
                (
                    "active",
                    state.conn_stats.active.load(Ordering::Relaxed).into(),
                ),
                (
                    "idle_keepalive",
                    state
                        .conn_stats
                        .idle_keepalive
                        .load(Ordering::Relaxed)
                        .into(),
                ),
                (
                    "accepted_total",
                    state
                        .conn_stats
                        .accepted_total
                        .load(Ordering::Relaxed)
                        .into(),
                ),
                (
                    "timeouts",
                    state.conn_stats.timeouts.load(Ordering::Relaxed).into(),
                ),
                (
                    "event_loop_wakeups",
                    state
                        .conn_stats
                        .event_loop_wakeups
                        .load(Ordering::Relaxed)
                        .into(),
                ),
            ]),
        ),
        (
            "remote_shards",
            obj([
                ("endpoints", remote.len().into()),
                ("requests", remote_totals.requests.into()),
                ("errors", remote_totals.errors.into()),
                ("ejections", ejections_total.into()),
                ("micros_total", remote_totals.micros_total.into()),
                (
                    "by_endpoint",
                    Json::Arr(
                        remote
                            .iter()
                            .map(|(endpoint, s)| {
                                let h = health.get(endpoint);
                                obj([
                                    ("endpoint", endpoint.as_str().into()),
                                    ("requests", s.requests.into()),
                                    ("errors", s.errors.into()),
                                    ("micros_total", s.micros_total.into()),
                                    (
                                        "connect_attempts",
                                        h.map_or(0, |h| h.connect_attempts).into(),
                                    ),
                                    (
                                        "consecutive_failures",
                                        u64::from(h.map_or(0, |h| h.consecutive_failures)).into(),
                                    ),
                                    ("ejected", h.is_some_and(|h| h.ejected).into()),
                                    ("ejections", h.map_or(0, |h| h.ejections).into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "registry",
            obj([
                ("slots", registry_slots.len().into()),
                ("stale_slots", registry_stale_slots.into()),
                (
                    "by_slot",
                    Json::Arr(
                        registry_slots
                            .iter()
                            .map(|s| {
                                obj([
                                    ("dataset", s.dataset.as_str().into()),
                                    ("shard", s.shard.into()),
                                    ("shards", s.shards.into()),
                                    ("replicas", s.replicas.into()),
                                    ("fresh_replicas", s.fresh_replicas.into()),
                                    ("freshest_age_secs", s.freshest_age_secs.into()),
                                    ("stalest_age_secs", s.stalest_age_secs.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]))
}

/// `GET /metrics`: Prometheus text exposition assembled from the same
/// registries `/healthz` reads — the counter series here always
/// reconcile with the healthz totals, and the histograms add the
/// latency distributions healthz's monotonic counters cannot carry.
/// Metric names follow one scheme: `shapesearch_<noun>_<unit|total>`,
/// with `stage`/`endpoint`/`event`/`outcome` labels for families.
fn metrics(state: &Arc<AppState>) -> Response {
    let stats = state.cache.stats();
    let shard_stats = state.shard_stats();
    let pruning = *state.pruning.lock().expect("pruning stats lock");
    let remote: Vec<(String, RemoteShardStats)> = state
        .remote_stats
        .lock()
        .expect("remote stats lock")
        .iter()
        .map(|(endpoint, s)| (endpoint.clone(), *s))
        .collect();

    let mut expo = obs::Exposition::new();
    expo.gauge(
        "shapesearch_uptime_seconds",
        "Seconds since this server process started.",
        state.started.elapsed().as_secs(),
    );
    expo.gauge(
        "shapesearch_datasets",
        "Registered datasets.",
        state.catalog.len() as u64,
    );
    expo.counter(
        "shapesearch_queries_total",
        "Queries received on POST /query (each batch item counts once).",
        state.queries.load(Ordering::Relaxed),
    );
    expo.counter(
        "shapesearch_shard_queries_total",
        "POST /shard/query RPCs served by this process.",
        state.shard_queries.load(Ordering::Relaxed),
    );

    expo.counter(
        "shapesearch_cache_lookups_total",
        "Query-cache lookups.",
        stats.lookups,
    );
    expo.counter_family(
        "shapesearch_cache_events_total",
        "Query-cache lookup outcomes (hit + miss + coalesced = lookups).",
        "event",
        &[
            ("hit", stats.hits),
            ("miss", stats.misses),
            ("coalesced", stats.coalesced),
        ],
    );
    expo.gauge(
        "shapesearch_cache_entries",
        "Live query-cache entries.",
        stats.entries as u64,
    );
    expo.gauge(
        "shapesearch_cache_capacity",
        "Query-cache capacity in entries.",
        stats.capacity as u64,
    );

    expo.counter(
        "shapesearch_shard_tasks_total",
        "Local shard tasks executed.",
        shard_stats.tasks,
    );
    expo.counter(
        "shapesearch_shard_micros_total",
        "Engine-side microseconds spent in local shard tasks.",
        shard_stats.micros_total,
    );

    expo.counter_family(
        "shapesearch_pruning_candidates_total",
        "Pruning-driver candidate outcomes (bounded = bound-checked, \
         pruned = skipped, scored = segmented in full).",
        "outcome",
        &[
            ("bounded", pruning.bounded),
            ("pruned", pruning.pruned),
            ("scored", pruning.scored),
        ],
    );
    expo.counter(
        "shapesearch_pruning_bound_micros_total",
        "Microseconds spent computing pruning upper bounds.",
        pruning.bound_micros,
    );

    let snapshots = state.catalog.resident().stats();
    expo.gauge(
        "shapesearch_snapshot_resident_shards",
        "Snapshot shards currently materialized in memory.",
        snapshots.resident as u64,
    );
    expo.gauge(
        "shapesearch_snapshot_resident_capacity",
        "Resident-shard cap (--resident-shards; 0 = unlimited).",
        snapshots.capacity as u64,
    );
    expo.counter(
        "shapesearch_snapshot_loads_total",
        "Cold snapshot-shard loads (first touch or reload after eviction).",
        snapshots.loads,
    );
    expo.counter(
        "shapesearch_snapshot_evictions_total",
        "Snapshot shards evicted by the resident-shard LRU.",
        snapshots.evictions,
    );
    expo.counter(
        "shapesearch_snapshot_load_micros_total",
        "Microseconds spent materializing snapshot shards.",
        snapshots.load_micros_total,
    );
    expo.gauge(
        "shapesearch_snapshot_resident_bytes",
        "Columnar-arena bytes held by resident snapshot shards.",
        snapshots.resident_bytes,
    );
    expo.gauge(
        "shapesearch_snapshot_resident_capacity_bytes",
        "Resident-shard byte budget (--resident-bytes; 0 = unlimited).",
        snapshots.capacity_bytes,
    );

    expo.gauge(
        "shapesearch_connections_active",
        "Open client connections (any phase, including keep-alive idle).",
        state.conn_stats.active.load(Ordering::Relaxed),
    );
    expo.gauge(
        "shapesearch_connections_idle_keepalive",
        "Open client connections parked idle between keep-alive requests.",
        state.conn_stats.idle_keepalive.load(Ordering::Relaxed),
    );
    expo.counter(
        "shapesearch_connections_accepted_total",
        "Client connections accepted since startup.",
        state.conn_stats.accepted_total.load(Ordering::Relaxed),
    );
    expo.counter(
        "shapesearch_connections_timeouts_total",
        "Connections cut by the idle or slow-request deadline.",
        state.conn_stats.timeouts.load(Ordering::Relaxed),
    );
    expo.counter(
        "shapesearch_connections_event_loop_wakeups_total",
        "Readiness event-loop wakeups that delivered at least one event.",
        state.conn_stats.event_loop_wakeups.load(Ordering::Relaxed),
    );

    let requests: Vec<(&str, u64)> = remote
        .iter()
        .map(|(e, s)| (e.as_str(), s.requests))
        .collect();
    let errors: Vec<(&str, u64)> = remote.iter().map(|(e, s)| (e.as_str(), s.errors)).collect();
    let micros: Vec<(&str, u64)> = remote
        .iter()
        .map(|(e, s)| (e.as_str(), s.micros_total))
        .collect();
    if !remote.is_empty() {
        expo.counter_family(
            "shapesearch_remote_requests_total",
            "Remote shard RPCs sent, by endpoint.",
            "endpoint",
            &requests,
        );
        expo.counter_family(
            "shapesearch_remote_errors_total",
            "Failed remote shard RPCs, by endpoint.",
            "endpoint",
            &errors,
        );
        expo.counter_family(
            "shapesearch_remote_micros_total",
            "Round-trip microseconds of remote shard RPCs, by endpoint.",
            "endpoint",
            &micros,
        );
    }
    let health = state.remote.health_snapshot();
    if !health.is_empty() {
        let ejections: Vec<(&str, u64)> = health
            .iter()
            .map(|h| (h.endpoint.as_str(), h.ejections))
            .collect();
        expo.counter_family(
            "shapesearch_remote_ejections_total",
            "Replica endpoints ejected by the failover circuit breaker \
             (each transition into ejection counts once), by endpoint.",
            "endpoint",
            &ejections,
        );
        let ejected: Vec<(&str, u64)> = health
            .iter()
            .map(|h| (h.endpoint.as_str(), u64::from(h.ejected)))
            .collect();
        expo.gauge_family(
            "shapesearch_remote_ejected",
            "Whether the failover circuit breaker currently holds this \
             replica endpoint ejected (1) or admits it (0), by endpoint.",
            "endpoint",
            &ejected,
        );
    }

    expo.histogram_family(
        "shapesearch_request_duration_micros",
        "End-to-end POST /query latency.",
        &[(None, state.metrics.requests.snapshot())],
    );
    expo.histogram_family(
        "shapesearch_shard_request_duration_micros",
        "End-to-end POST /shard/query service latency.",
        &[(None, state.metrics.shard_requests.snapshot())],
    );
    let stages: Vec<(Option<(&str, &str)>, obs::HistogramSnapshot)> = obs::Stage::ALL
        .iter()
        .map(|&stage| {
            (
                Some(("stage", stage.name())),
                state.metrics.stage_snapshot(stage),
            )
        })
        .collect();
    expo.histogram_family(
        "shapesearch_stage_duration_micros",
        "Per-stage latency across the request pipeline.",
        &stages,
    );
    let remote_hists = state.metrics.remote_snapshots();
    if !remote_hists.is_empty() {
        let series: Vec<(Option<(&str, &str)>, obs::HistogramSnapshot)> = remote_hists
            .iter()
            .map(|(endpoint, snap)| (Some(("endpoint", endpoint.as_str())), *snap))
            .collect();
        expo.histogram_family(
            "shapesearch_remote_rpc_duration_micros",
            "Remote shard RPC round-trip latency, by endpoint.",
            &series,
        );
    }
    Response::metrics_text(200, expo.finish())
}

fn list_datasets(state: &Arc<AppState>) -> Response {
    let datasets: Vec<Json> = state
        .catalog
        .list()
        .iter()
        .map(|e| protocol::dataset_to_json(e))
        .collect();
    ok(obj([("datasets", Json::Arr(datasets))]))
}

fn register_dataset(state: &Arc<AppState>, request: &Request) -> Result<Response, ServerError> {
    let body = body_json(request)?;
    let mut spec = protocol::dataset_spec_from_json(&body)?;
    if let DataSource::Path(path) | DataSource::Snapshot(path) = &mut spec.source {
        let resolved = check_path_source(path, state.data_root.as_deref())?;
        *path = resolved.to_string_lossy().into_owned();
    }
    let entry = state.catalog.register(spec)?;
    // Replacing a dataset id must not serve the old dataset's results,
    // and stale in-flight completions must not pollute the LRU.
    state.cache.invalidate_dataset(&entry.id, entry.generation);
    Ok(Response::json(
        201,
        protocol::dataset_to_json(&entry).to_text(),
    ))
}

/// `POST /registry/heartbeat`: a shard server announcing (or refreshing)
/// that it serves one partition of a dataset. Heartbeats feed the
/// in-memory placement registry that `"shard_endpoints": "registry"`
/// registrations resolve against; an entry stays fresh for
/// [`REGISTRY_TTL_SECS`] and is simply re-announced on the sender's
/// cadence.
fn registry_heartbeat(state: &Arc<AppState>, request: &Request) -> Result<Response, ServerError> {
    let body = body_json(request)?;
    let (dataset, (shard, shards), endpoint) = protocol::heartbeat_from_json(&body)?;
    state
        .catalog
        .registry()
        .heartbeat(&dataset, shard, shards, &endpoint)?;
    Ok(ok(obj([("registered", true.into())])))
}

/// `GET /registry`: the placement registry's current contents — every
/// heartbeat row with its age and freshness, stale rows included (they
/// are what an operator needs to see to debug a dead shard server).
fn registry_list(state: &Arc<AppState>) -> Response {
    let entries: Vec<Json> = state
        .catalog
        .registry()
        .snapshot()
        .iter()
        .map(protocol::registry_entry_to_json)
        .collect();
    ok(obj([
        ("entries", Json::Arr(entries)),
        ("ttl_secs", REGISTRY_TTL_SECS.into()),
    ]))
}

/// One query of a request, planned: dataset resolved, query text parsed
/// to its canonical AST, effective options and cache key computed.
struct PlannedQuery {
    entry: Arc<DatasetEntry>,
    query_ast: ShapeQuery,
    notes: Vec<String>,
    k: usize,
    options: EngineOptions,
    key: CacheKey,
    /// The request explicitly sent `"parallel": false` — batch groups
    /// honor the opt-out instead of defaulting parallelism on.
    parallel_opt_out: bool,
    /// The request asked for its trace (`"explain": true`) in the
    /// response envelope. Never part of the cache key: tracing observes
    /// the computation, it does not change it.
    explain: bool,
    /// The request opted into degraded answers (`"partial": true`): if
    /// every replica of some shard is down, it prefers the responsive
    /// shards' merged partial (flagged with a `degraded` block) over a
    /// 502. Never part of the cache key — a degraded answer is never
    /// cached, and the exact answer is the same either way.
    partial: bool,
}

fn plan_query(state: &Arc<AppState>, body: &Json) -> Result<PlannedQuery, ServerError> {
    let req = protocol::query_request_from_json(body)?;
    let entry = state
        .catalog
        .get(&req.dataset)
        .ok_or_else(|| ServerError::not_found(format!("unknown dataset `{}`", req.dataset)))?;
    let (query_ast, notes) = protocol::parse_query(&req)?;
    let options = req.effective_options(&state.default_options);
    let key = CacheKey::new(
        &entry.id,
        entry.generation,
        entry.shard_count,
        &entry.placement_fp,
        &query_ast,
        req.k,
        &options,
    );
    Ok(PlannedQuery {
        entry,
        query_ast,
        notes,
        k: req.k,
        options,
        key,
        parallel_opt_out: req.parallel == Some(false),
        explain: req.explain,
        partial: req.partial,
    })
}

/// Accumulated engine-stage time of one local shard task, for its trace
/// span (the same samples also land in the global stage histograms).
#[derive(Debug, Default, Clone, Copy)]
struct StageMicros {
    group: u64,
    segment_score: u64,
    prune_bound: u64,
}

/// The per-task [`StageObserver`]: forwards every engine stage sample
/// into the process-wide histograms and accumulates per-task totals for
/// the task's span. Atomics because the engine may report from several
/// scoring threads at once.
struct StageTap<'m> {
    metrics: &'m obs::Metrics,
    group: AtomicU64,
    segment_score: AtomicU64,
    prune_bound: AtomicU64,
}

impl<'m> StageTap<'m> {
    fn new(metrics: &'m obs::Metrics) -> Self {
        Self {
            metrics,
            group: AtomicU64::new(0),
            segment_score: AtomicU64::new(0),
            prune_bound: AtomicU64::new(0),
        }
    }

    fn totals(&self) -> StageMicros {
        StageMicros {
            group: self.group.load(Ordering::Relaxed),
            segment_score: self.segment_score.load(Ordering::Relaxed),
            prune_bound: self.prune_bound.load(Ordering::Relaxed),
        }
    }
}

impl StageObserver for StageTap<'_> {
    fn stage(&self, stage: EngineStage, micros: u64) {
        self.metrics.stage(obs::Stage::from_engine(stage), micros);
        let slot = match stage {
            EngineStage::Group => &self.group,
            EngineStage::SegmentScore => &self.segment_score,
            EngineStage::PruneBound => &self.prune_bound,
        };
        slot.fetch_add(micros, Ordering::Relaxed);
    }
}

/// One shard's contribution to a query group: per-query outcomes (the
/// shard's top-k partial or a structured error), the shard's
/// microseconds (engine-side for local shards, RPC round-trip for remote
/// ones), and — for remote shards — the per-query `pruned_bound`s the
/// reply declared (what the shard pruned on our hint's authority alone;
/// the verification pass must discharge every one of them).
struct ShardRun {
    outcomes: Vec<Result<Vec<TopKResult>, ServerError>>,
    micros: u64,
    pruned_bounds: Vec<Option<f64>>,
    /// Engine-stage totals of a local task (zero for remote shards —
    /// their engine time shows in their own spans below).
    stages: StageMicros,
    /// A remote shard server's own span tree (present only when the RPC
    /// carried a `trace_id`; always empty for local shards).
    remote_spans: Vec<Span>,
}

/// One **local** shard task: the batched engine pass over one partition,
/// against the computation's shared threshold cells (so this shard's
/// proven progress prunes the other shards' work and vice versa), with
/// its engine-side time (every execution path times shards the same
/// way). Engine errors map to 400s here so local and remote partials
/// carry one error type into the merge. Hint-justified prunes are
/// tracked inside the shared cells, not per shard, so `pruned_bounds`
/// is all-`None` here.
fn run_local_shard(
    state: &AppState,
    shard: &shapesearch_core::ShapeEngine,
    queries: &[(ShapeQuery, usize)],
    options: &EngineOptions,
    shared: &SharedThresholds,
) -> ShardRun {
    let tap = StageTap::new(&state.metrics);
    let started = Instant::now();
    let items: Vec<(&ShapeQuery, usize)> = queries.iter().map(|(q, k)| (q, *k)).collect();
    let outcomes = shard
        .top_k_batch_observed(&items, options, shared, &tap)
        .into_iter()
        .map(|outcome| outcome.map_err(|e| ServerError::bad_request(format!("query failed: {e}"))))
        .collect();
    let micros = started.elapsed().as_micros() as u64;
    state.metrics.stage(obs::Stage::ShardCompute, micros);
    ShardRun {
        outcomes,
        micros,
        pruned_bounds: vec![None; queries.len()],
        stages: tap.totals(),
        remote_spans: Vec::new(),
    }
}

/// One **remote** shard task: ships the query group to the shard's
/// replica list over the pooled RPC client's health-checked failover
/// ([`PooledClient::post_replicas`]) and decodes the per-query partials
/// from the first replica that answers well. Per-replica failures
/// (connect — after the client's configured retries —, I/O, a non-200
/// envelope, or a malformed body) make failover move to the next
/// replica; this is safe for any failure class because `/shard/query`
/// is a pure idempotent read — at worst a slow replica computes an
/// answer nobody consumes. Only when **every** replica has failed does
/// the group get a [`ServerError::replicas_unavailable`] naming each
/// attempted endpoint with its failure, replicated across every query
/// of the group. *Per-query* engine errors inside a 200 envelope pass
/// through with their original status and message, so an all-remote
/// placement reports the same errors an all-local one would. Records
/// every attempted endpoint's `/healthz` gauges, successful or not.
fn run_remote_shard(
    state: &AppState,
    replicas: &[String],
    dataset: &str,
    queries: &[(ShapeQuery, usize)],
    options: &EngineOptions,
    hints: &[Option<f64>],
    trace: Option<&str>,
) -> ShardRun {
    let body = protocol::shard_request_to_json(dataset, queries, hints, options, trace);
    let started = Instant::now();
    let outcome = state
        .remote
        .post_replicas(replicas, "/shard/query", &body, |response| {
            if response.status == 200 {
                protocol::shard_outcomes_from_json(&response.body, queries.len())
            } else {
                Err(format!(
                    "status {}: {}",
                    response.status,
                    response
                        .body
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("(no error detail)")
                ))
            }
        });
    let micros = started.elapsed().as_micros() as u64;
    state.metrics.stage(obs::Stage::RemoteRpc, micros);
    {
        // All of an endpoint's gauges move in one critical section so a
        // `/healthz` snapshot can never show a request without its
        // error/micros; one acquisition covers the whole failover trail.
        let mut stats = state.remote_stats.lock().expect("remote stats lock");
        for attempt in &outcome.attempts {
            let entry = stats.entry(attempt.endpoint.clone()).or_default();
            entry.requests += 1;
            entry.errors += u64::from(attempt.error.is_some());
            entry.micros_total += attempt.micros;
        }
    }
    for attempt in &outcome.attempts {
        state
            .metrics
            .record_remote(&attempt.endpoint, attempt.micros);
    }
    match outcome.accepted {
        Some((partials, _served_by)) => ShardRun {
            outcomes: partials.outcomes,
            micros,
            pruned_bounds: partials.pruned_bounds,
            stages: StageMicros::default(),
            remote_spans: partials.spans,
        },
        None => {
            let err = ServerError::replicas_unavailable(outcome.attempts.iter().map(|a| {
                (
                    a.endpoint.as_str(),
                    a.error.as_deref().unwrap_or("unknown failure"),
                )
            }));
            ShardRun {
                outcomes: vec![Err(err); queries.len()],
                micros,
                pruned_bounds: vec![None; queries.len()],
                stages: StageMicros::default(),
                remote_spans: Vec::new(),
            }
        }
    }
}

/// Merges per-shard runs into per-query outcomes under the engine's one
/// ordering contract ([`merge_topk_refs`]: score descending, ties to
/// the lower global `viz_index`). The first failing shard's error (in
/// partition order) stands for the query — a partial top-k missing a
/// shard's candidates must never be passed off as the global answer.
/// Borrows the runs (cloning only each query's k winners) because the
/// hint-verification pass may re-merge after retrying a shard.
fn merge_shard_runs(runs: &[ShardRun], ks: &[usize]) -> Vec<Result<Vec<TopKResult>, ServerError>> {
    ks.iter()
        .enumerate()
        .map(|(qi, &k)| {
            let mut partials: Vec<&[TopKResult]> = Vec::with_capacity(runs.len());
            let mut first_err = None;
            for run in runs {
                match &run.outcomes[qi] {
                    Ok(results) => partials.push(results),
                    Err(e) => {
                        first_err.get_or_insert_with(|| e.clone());
                    }
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(merge_topk_refs(partials, k)),
            }
        })
        .collect()
}

/// Everything one shard fan-out produced: the merged per-query outcomes,
/// the per-shard timings (placement order), the per-query hint debt this
/// computation still owes *its own* caller (largest upper bound pruned on
/// the authority of a caller-supplied hint — forwarded up the
/// `/shard/query` reply so the caller can verify), and the computation's
/// pruning counter snapshot.
struct ShardExec {
    outcomes: Vec<Result<Vec<TopKResult>, ServerError>>,
    shard_micros: Vec<u64>,
    hint_pruned: Vec<Option<f64>>,
    pruning: PruningSnapshot,
    /// The fan-out's span forest, one span per shard slot (stitching in
    /// remote servers' own spans) plus the merge span. Empty unless the
    /// computation was traced.
    spans: Vec<Span>,
    /// Per query: the best *partial* answer assemblable from the shards
    /// that did respond, present only when the query failed **and** the
    /// failure is maskable — every failing shard failed with
    /// `shard_unavailable` (all replicas dead; an engine error is never
    /// maskable) and the computation was seeded with no caller hints (a
    /// `/shard/query` callee must report its failure upward, not degrade
    /// on the router's behalf). Consumed only by queries that opted in
    /// with `"partial": true`; everyone else keeps the error.
    degraded: Vec<Option<DegradedQuery>>,
}

/// A partial answer for one query: the deterministic merge of the
/// responsive shards' top-k partials, plus which partitions are missing
/// and why. Never cached, never presented as exact.
struct DegradedQuery {
    results: Vec<TopKResult>,
    info: DegradedInfo,
}

/// The `degraded` response block of a partial answer: the missing
/// partition indices and each one's replica-failure message.
#[derive(Debug, Clone)]
struct DegradedInfo {
    missing: Vec<usize>,
    errors: Vec<(usize, String)>,
}

/// True when a shard's reported hint-pruned bound is **not** discharged
/// by the merged answer: with fewer than `k` merged results, or a k-th
/// score not strictly above the bound, a candidate that shard pruned on
/// our hint's authority could still belong to the true top k (strictness
/// covers score ties, which break by index). The merged k-th is proven —
/// it comes from exactly scored candidates — and the global k-th can
/// only be higher, so a discharged bound is sound no matter what the
/// hint was.
fn hint_undischarged(
    outcome: &Result<Vec<TopKResult>, ServerError>,
    k: usize,
    pruned_bound: Option<f64>,
) -> bool {
    // k = 0 asks for nothing, so nothing prunable can be dropped.
    if k == 0 {
        return false;
    }
    match (outcome, pruned_bound) {
        (Ok(results), Some(bound)) => {
            results.len() < k
                || results[k - 1].score.total_cmp(&bound) != std::cmp::Ordering::Greater
        }
        _ => false,
    }
}

/// Executes one `(dataset, options)` query group over the dataset's
/// partition map and merges each query's per-shard top-k partials
/// deterministically. Local shards fan out **one compute-pool task per
/// shard** — the submitting HTTP worker helps drain the pool while it
/// waits, so a single query can saturate every core and large batches
/// interleave with other requests as short shard tasks — while remote
/// shards go out as RPC tasks on the same pool (leaf work either way:
/// neither submits further tasks, so the help-while-waiting protocol
/// cannot deadlock). `sequential` (a client's explicit
/// `"parallel": false` CPU cap) runs every slot inline one after
/// another instead. Single-shard **local** datasets run inline on the
/// caller — with the options untouched, preserving the unsharded
/// engine's exact execution profile (including its own viz-level
/// parallelism policy), unless the client opted out, in which case the
/// engine's auto-parallel threshold is disabled too (the cap must hold
/// on every path).
///
/// **Threshold flow.** Every local shard task shares one
/// [`SharedThresholds`] (one cell per query), seeded from the caller's
/// `hints` (a `/shard/query` RPC's `threshold_hint`s; empty for
/// user-facing queries). Remote RPC tasks are enqueued *after* the local
/// tasks and read the cells at execution time, so whatever the local
/// shards have proven by then rides along as the remote
/// `threshold_hint` — hints are pure accelerators and arrive as fresh as
/// scheduling allows. After the merge, every remote-reported
/// `pruned_bound` must be discharged by the merged answer
/// ([`hint_undischarged`]); shards that fail verification are re-queried
/// **hint-less** (their exact partial) and the merge repeats — which is
/// what makes a stale or poisoned hint unable to silently drop a true
/// top-k result.
///
/// This is the pool-task twin of the in-process fan-out in
/// [`shapesearch_core::ShardedEngine::top_k_batch`] (which uses scoped
/// threads over borrowed queries, where the server needs `'static`
/// tasks over `Arc`s); the two must keep the same single-shard and
/// inner-options policy. The distributed invariant rides on the shared
/// merge: partials are partials, whether they came off this process's
/// pool or over the wire, so results stay byte-identical to a
/// single-process run for every placement.
fn execute_on_shards(
    state: &Arc<AppState>,
    entry: &Arc<DatasetEntry>,
    queries: Vec<(ShapeQuery, usize)>,
    options: &EngineOptions,
    sequential: bool,
    hints: &[Option<f64>],
    trace: Option<&str>,
) -> ShardExec {
    let ks: Vec<usize> = queries.iter().map(|&(_, k)| k).collect();
    // Resolve every local slot's engine up front. An eager entry hands
    // back its resident Arcs for free; a snapshot entry materializes
    // cold shards through the catalog's resident LRU (singleflight —
    // queries racing one cold shard share a single load, and the load
    // happens before the fan-out so pool tasks never block on I/O). A
    // failed load fails the whole fan-out with its structured error:
    // a partial answer must never pass as the global top-k.
    let mut local: Vec<Option<Arc<shapesearch_core::ShapeEngine>>> =
        Vec::with_capacity(entry.placement.len());
    for (slot, placement) in entry.placement.iter().enumerate() {
        match placement {
            ShardPlacement::Local => match entry.local_shard(slot) {
                Ok(engine) => local.push(Some(engine)),
                Err(e) => {
                    return ShardExec {
                        outcomes: ks.iter().map(|_| Err(e.clone())).collect(),
                        shard_micros: Vec::new(),
                        hint_pruned: vec![None; ks.len()],
                        pruning: PruningSnapshot::default(),
                        spans: Vec::new(),
                        degraded: ks.iter().map(|_| None).collect(),
                    }
                }
            },
            ShardPlacement::Remote(_) => local.push(None),
        }
    }
    let queries = Arc::new(queries);
    let shared = SharedThresholds::new(queries.len());
    for (i, hint) in hints.iter().enumerate().take(shared.len()) {
        if let Some(hint) = hint {
            shared.seed_hint(i, *hint);
        }
    }
    // Shard tasks are the unit of parallelism: the engine's inner
    // viz-level parallelism is switched off rather than oversubscribing
    // the pool's cores. (Remote shard servers schedule their own cores;
    // scheduling never changes results.) Also the options any
    // verification retry re-sends.
    let inner = EngineOptions {
        parallel: false,
        parallel_threshold: usize::MAX,
        ..options.clone()
    };

    let mut runs: Vec<ShardRun> = if local.len() == 1 && entry.placement[0] == ShardPlacement::Local
    {
        // An explicit opt-out must also defeat the engine's internal
        // auto-parallel threshold — a capped client gets one thread
        // no matter the collection size.
        let capped = EngineOptions {
            parallel: false,
            parallel_threshold: usize::MAX,
            ..options.clone()
        };
        let effective = if sequential { &capped } else { options };
        let shard = local[0].as_ref().expect("single local slot resolved");
        vec![run_local_shard(state, shard, &queries, effective, &shared)]
    } else if sequential {
        entry
            .placement
            .iter()
            .zip(&local)
            .map(|(placement, shard)| match placement {
                ShardPlacement::Local => {
                    let shard = shard.as_ref().expect("local slot resolved");
                    run_local_shard(state, shard, &queries, &inner, &shared)
                }
                ShardPlacement::Remote(replicas) => {
                    let hints = live_hints(&shared);
                    run_remote_shard(state, replicas, &entry.id, &queries, &inner, &hints, trace)
                }
            })
            .collect()
    } else {
        // Pool tasks run on long-lived threads, so each owns `Arc`s
        // of its shard (or of the app state, for the RPC client and
        // gauges) and of the shared query list. Local tasks are
        // enqueued first so the queue's FIFO order gives remote RPCs
        // the freshest possible threshold hints; `order` maps the
        // submission order back onto placement slots.
        let mut order: Vec<usize> = Vec::with_capacity(local.len());
        let mut tasks: Vec<Box<dyn FnOnce() -> ShardRun + Send>> = Vec::with_capacity(local.len());
        for (slot, (placement, shard)) in entry.placement.iter().zip(&local).enumerate() {
            if *placement != ShardPlacement::Local {
                continue;
            }
            let task_state = Arc::clone(state);
            let shard = Arc::clone(shard.as_ref().expect("local slot resolved"));
            let queries = Arc::clone(&queries);
            let inner = inner.clone();
            let shared = shared.clone();
            order.push(slot);
            tasks.push(Box::new(move || {
                run_local_shard(&task_state, &shard, &queries, &inner, &shared)
            }));
        }
        for (slot, placement) in entry.placement.iter().enumerate() {
            let ShardPlacement::Remote(replicas) = placement else {
                continue;
            };
            let state = Arc::clone(state);
            let entry = Arc::clone(entry);
            let replicas = replicas.clone();
            let queries = Arc::clone(&queries);
            let inner = inner.clone();
            let shared = shared.clone();
            let trace = trace.map(str::to_owned);
            order.push(slot);
            tasks.push(Box::new(move || {
                // Hints read at execution time: locals enqueued ahead
                // may already have proven a threshold.
                let hints = live_hints(&shared);
                run_remote_shard(
                    &state,
                    &replicas,
                    &entry.id,
                    &queries,
                    &inner,
                    &hints,
                    trace.as_deref(),
                )
            }));
        }
        let mut slots: Vec<Option<ShardRun>> = (0..local.len()).map(|_| None).collect();
        for (slot, run) in order.into_iter().zip(state.compute.run_all(tasks)) {
            slots[slot] = Some(run);
        }
        slots
            .into_iter()
            .map(|run| run.expect("every shard slot ran"))
            .collect()
    };

    {
        // One critical section per fan-out keeps the gauges mutually
        // consistent (never tasks without their micros). Only local
        // slots count here; remote RPCs were recorded per endpoint.
        let local_micros: Vec<u64> = entry
            .placement
            .iter()
            .zip(&runs)
            .filter(|(p, _)| matches!(p, ShardPlacement::Local))
            .map(|(_, run)| run.micros)
            .collect();
        let mut stats = state.shard_stats.lock().expect("shard stats lock");
        stats.tasks += local_micros.len() as u64;
        stats.micros_total += local_micros.iter().sum::<u64>();
    }

    let merge_started = Instant::now();
    let mut outcomes = merge_shard_runs(&runs, &ks);
    let mut merge_micros = merge_started.elapsed().as_micros() as u64;

    // Verification: every remote-reported hint-pruned bound must be
    // strictly cleared by the merged answer; shards owing an
    // undischarged bound are re-queried hint-less (their reply is then
    // the exact partial, with nothing left to verify).
    let retry: Vec<usize> = entry
        .placement
        .iter()
        .enumerate()
        .filter(|(slot, placement)| {
            matches!(placement, ShardPlacement::Remote(_))
                && runs[*slot]
                    .pruned_bounds
                    .iter()
                    .zip(&outcomes)
                    .zip(&ks)
                    .any(|((&bound, outcome), &k)| hint_undischarged(outcome, k, bound))
        })
        .map(|(slot, _)| slot)
        .collect();
    if !retry.is_empty() {
        let no_hints = vec![None; queries.len()];
        for slot in retry {
            let ShardPlacement::Remote(replicas) = &entry.placement[slot] else {
                unreachable!("only remote shards are retried");
            };
            runs[slot] = run_remote_shard(
                state, replicas, &entry.id, &queries, &inner, &no_hints, trace,
            );
        }
        let remerge_started = Instant::now();
        outcomes = merge_shard_runs(&runs, &ks);
        merge_micros += remerge_started.elapsed().as_micros() as u64;
    }
    state.metrics.stage(obs::Stage::Merge, merge_micros);

    let pruning = shared.snapshot();
    state
        .pruning
        .lock()
        .expect("pruning stats lock")
        .add(pruning);

    // The fan-out's span forest: one span per shard slot — a local
    // shard's engine-stage breakdown, or a remote RPC with the remote
    // server's own spans stitched underneath — plus the merge. Built
    // only for traced computations; untraced requests pay nothing here.
    let spans = if trace.is_some() {
        let mut spans: Vec<Span> = entry
            .placement
            .iter()
            .zip(&runs)
            .enumerate()
            .map(|(slot, (placement, run))| match placement {
                ShardPlacement::Local => {
                    let mut span = Span::new("shard_compute", run.micros)
                        .with_detail(format!("shard {slot} local"));
                    for (stage, micros) in [
                        (obs::Stage::Group, run.stages.group),
                        (obs::Stage::SegmentScore, run.stages.segment_score),
                        (obs::Stage::PruneBound, run.stages.prune_bound),
                    ] {
                        if micros > 0 {
                            span.push(Span::new(stage.name(), micros));
                        }
                    }
                    span
                }
                ShardPlacement::Remote(replicas) => {
                    let mut span = Span::new("remote_rpc", run.micros)
                        .with_detail(format!("shard {slot} @ {}", replicas.join("|")));
                    for remote_span in &run.remote_spans {
                        span.push(remote_span.clone());
                    }
                    span
                }
            })
            .collect();
        spans.push(Span::new("merge", merge_micros));
        spans
    } else {
        Vec::new()
    };

    // Degraded fallbacks, computed only for queries that failed: the
    // merge of whatever shards *did* answer, offered upward so a
    // `"partial": true` caller can trade completeness for availability.
    // A fan-out seeded with caller hints is a `/shard/query` callee —
    // its caller owns the degradation decision, so nothing is offered.
    let no_caller_hints = hints.iter().all(Option::is_none);
    let degraded: Vec<Option<DegradedQuery>> = outcomes
        .iter()
        .enumerate()
        .map(|(qi, outcome)| {
            if outcome.is_ok() || !no_caller_hints {
                return None;
            }
            let mut partials: Vec<&[TopKResult]> = Vec::new();
            let mut missing = Vec::new();
            let mut errors = Vec::new();
            for (slot, run) in runs.iter().enumerate() {
                match &run.outcomes[qi] {
                    Ok(results) => partials.push(results),
                    Err(e) if e.code == Some("shard_unavailable") => {
                        missing.push(slot);
                        errors.push((slot, e.message.clone()));
                    }
                    // A real engine error on any shard poisons the whole
                    // query — masking it as "degraded" would hide a bug.
                    Err(_) => return None,
                }
            }
            Some(DegradedQuery {
                results: merge_topk_refs(partials, ks[qi]),
                info: DegradedInfo { missing, errors },
            })
        })
        .collect();

    ShardExec {
        outcomes,
        shard_micros: runs.iter().map(|run| run.micros).collect(),
        hint_pruned: (0..queries.len()).map(|i| shared.hint_pruned(i)).collect(),
        pruning,
        spans,
        degraded,
    }
}

/// The per-query `threshold_hint`s to forward to a remote shard: each
/// cell's current effective threshold (proven progress plus any hint
/// this process itself received — sound to forward because every tier
/// verifies the bounds its downstream reports), or `None` while a cell
/// is still empty.
fn live_hints(shared: &SharedThresholds) -> Vec<Option<f64>> {
    (0..shared.len())
        .map(|i| {
            let threshold = shared.cell(i).get();
            (threshold > f64::NEG_INFINITY).then_some(threshold)
        })
        .collect()
}

/// `POST /shard/query`: this process acting as a **shard server**. Runs
/// the RPC's query group over the addressed dataset's own partition map
/// (typically the single partition a `--shard-of` registration owns, but
/// composable: a mid-tier router's shards — local or remote — answer the
/// same way) and replies with per-query partials. The request's
/// `threshold_hint`s seed this computation's shared threshold cells;
/// whatever was pruned on their authority alone is reported back per
/// query as `pruned_bound` for the caller's verification pass, along
/// with this RPC's pruning counters. Deliberately bypasses the result
/// cache: the router caches the *merged* answer under a key that already
/// fingerprints this shard's placement, and double-caching partials
/// would double the memory for zero extra hits.
fn shard_query(state: &Arc<AppState>, request: &Request) -> Result<Response, ServerError> {
    let body = body_json(request)?;
    let req = protocol::shard_request_from_json(&body)?;
    let entry = state
        .catalog
        .get(&req.dataset)
        .ok_or_else(|| ServerError::not_found(format!("unknown dataset `{}`", req.dataset)))?;
    state.shard_queries.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let exec = execute_on_shards(
        state,
        &entry,
        req.queries,
        &req.options,
        false,
        &req.hints,
        req.trace_id.as_deref(),
    );
    let micros = started.elapsed().as_micros() as u64;
    state.metrics.shard_requests.record(micros);
    // A traced RPC replies with this server's own span tree under one
    // root, so the router stitches a cross-process trace whose remote
    // branches carry the remote servers' own timings.
    let spans = req.trace_id.as_deref().map(|trace_id| {
        let mut root = Span::new("shard_request", micros).with_detail(format!("trace {trace_id}"));
        for span in exec.spans {
            root.push(span);
        }
        vec![root]
    });
    Ok(ok(protocol::shard_outcomes_to_json(
        &entry.id,
        &exec.outcomes,
        &exec.hint_pruned,
        exec.pruning,
        micros,
        spans.as_deref(),
    )))
}

/// One planned query's computation, outside any singleflight: either the
/// exact merged results or the error — alongside the degraded fallback
/// (when one was assemblable), the per-shard micros, the fan-out's spans
/// (when traced), and the computation's pruning stats.
struct Computed {
    outcome: Result<Arc<Vec<TopKResult>>, ServerError>,
    /// The best partial answer when `outcome` failed maskably (every
    /// failing shard had all replicas down). `None` on success or on
    /// engine errors; consumed only by `"partial": true` requests.
    degraded: Option<DegradedQuery>,
    shard_micros: Vec<u64>,
    spans: Vec<Span>,
    pruning: PruningSnapshot,
}

/// Runs one planned query on the engine (all shards), outside any
/// singleflight.
fn compute(state: &Arc<AppState>, planned: &PlannedQuery, trace: Option<&str>) -> Computed {
    let mut exec = execute_on_shards(
        state,
        &planned.entry,
        vec![(planned.query_ast.clone(), planned.k)],
        &planned.options,
        planned.parallel_opt_out,
        &[],
        trace,
    );
    Computed {
        outcome: exec
            .outcomes
            .pop()
            .expect("one outcome per query")
            .map(Arc::new),
        degraded: exec.degraded.pop().expect("one fallback slot per query"),
        shard_micros: exec.shard_micros,
        spans: exec.spans,
        pruning: exec.pruning,
    }
}

/// The per-query response body (shared between the single and batch
/// forms; only the single form carries `micros` — a batch reports one
/// wall-clock figure for the whole request instead). `shard_micros`
/// carries the per-shard engine time of the computation this response
/// came from, so it is present only when this very request did the
/// computing (absent on cache hits and coalesced waits).
fn query_response(
    planned: &PlannedQuery,
    results: &[TopKResult],
    cached: bool,
    coalesced: bool,
    micros: Option<u64>,
    shard_micros: Option<&[u64]>,
    degraded: Option<&DegradedInfo>,
) -> Json {
    let mut fields = vec![
        ("dataset", Json::Str(planned.entry.id.clone())),
        ("query", Json::Str(planned.query_ast.to_string())),
        ("k", planned.k.into()),
        ("algo", planned.options.segmenter.name().into()),
        ("shards", planned.entry.shard_count.into()),
        ("cached", cached.into()),
        ("coalesced", coalesced.into()),
    ];
    if let Some(micros) = micros {
        fields.push(("micros", micros.into()));
    }
    if let Some(shard_micros) = shard_micros {
        fields.push((
            "shard_micros",
            Json::Arr(shard_micros.iter().map(|&m| m.into()).collect()),
        ));
    }
    if let Some(degraded) = degraded {
        // The one block that marks an answer as inexact: which
        // partitions are missing, and the replica trail of each failure.
        fields.push((
            "degraded",
            obj([
                (
                    "missing_shards",
                    Json::Arr(degraded.missing.iter().map(|&s| s.into()).collect()),
                ),
                (
                    "errors",
                    Json::Arr(
                        degraded
                            .errors
                            .iter()
                            .map(|(slot, message)| {
                                obj([
                                    ("shard", (*slot).into()),
                                    ("error", message.as_str().into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    fields.push(("results", protocol::results_to_json(results)));
    if !planned.notes.is_empty() {
        fields.push((
            "notes",
            Json::Arr(planned.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ));
    }
    obj(fields)
}

/// One resolved query: the results, how they were obtained, and — when
/// this caller led the computation itself — its per-shard timings, trace
/// spans, and pruning stats.
struct ResolvedQuery {
    value: Arc<Vec<TopKResult>>,
    cached: bool,
    coalesced: bool,
    shard_micros: Option<Vec<u64>>,
    /// Total time spent in cache lookups (and coalesced waiting) before
    /// the outcome was known.
    lookup_micros: u64,
    /// The computation's span forest; empty unless this caller led a
    /// traced computation.
    exec_spans: Vec<Span>,
    /// Pruning stats of the led computation (zeros on hits/waits — a
    /// cached answer did no pruning work for this request).
    pruning: PruningSnapshot,
    /// Present when `value` is a **degraded** partial answer: the
    /// missing partitions and their failures. Only ever set for
    /// `"partial": true` requests that led a computation; degraded
    /// values are never cached, so hits and coalesced waits are always
    /// exact.
    degraded: Option<DegradedInfo>,
}

/// Resolves one planned query through the singleflight cache, blocking
/// as long as it takes. When a foreign leader fails, the waiters retry
/// the lookup — the next one elects itself leader (a fresh, *counted*
/// miss) and the rest re-coalesce onto it — so every engine computation
/// shows up as exactly one `misses` tick, even on error paths.
fn resolve_query(
    state: &Arc<AppState>,
    planned: &PlannedQuery,
    trace: Option<&str>,
) -> Result<ResolvedQuery, ServerError> {
    let mut lookup_micros = 0u64;
    loop {
        let lookup_started = Instant::now();
        let lookup = state.cache.lookup(&planned.key);
        let this_lookup = lookup_started.elapsed().as_micros() as u64;
        state.metrics.stage(obs::Stage::CacheLookup, this_lookup);
        lookup_micros += this_lookup;
        match lookup {
            Lookup::Hit(v) => {
                return Ok(ResolvedQuery {
                    value: v,
                    cached: true,
                    coalesced: false,
                    shard_micros: None,
                    lookup_micros,
                    exec_spans: Vec::new(),
                    pruning: PruningSnapshot::default(),
                    degraded: None,
                })
            }
            Lookup::Pending(waiter) => {
                let wait_started = Instant::now();
                let outcome = waiter.wait();
                lookup_micros += wait_started.elapsed().as_micros() as u64;
                match outcome {
                    Some(v) => {
                        return Ok(ResolvedQuery {
                            value: v,
                            cached: true,
                            coalesced: true,
                            shard_micros: None,
                            lookup_micros,
                            exec_spans: Vec::new(),
                            pruning: PruningSnapshot::default(),
                            degraded: None,
                        })
                    }
                    // Leader failed: its flight is gone; loop to contend
                    // for the vacated key (engine errors are
                    // deterministic, so whoever wins next will surface
                    // the same error).
                    None => continue,
                }
            }
            Lookup::Lead(guard) => {
                let computed = compute(state, planned, trace);
                match computed.outcome {
                    Ok(v) => {
                        guard.complete(Arc::clone(&v));
                        return Ok(ResolvedQuery {
                            value: v,
                            cached: false,
                            coalesced: false,
                            shard_micros: Some(computed.shard_micros),
                            lookup_micros,
                            exec_spans: computed.spans,
                            pruning: computed.pruning,
                            degraded: None,
                        });
                    }
                    Err(e) => {
                        // Dropping the guard publishes the failure so
                        // coalesced waiters wake (and re-contend) instead
                        // of deadlocking — crucially it also means a
                        // degraded answer is NEVER cached: only this
                        // opted-in caller sees it, and the next request
                        // recomputes from scratch.
                        drop(guard);
                        if planned.partial {
                            if let Some(DegradedQuery { results, info }) = computed.degraded {
                                return Ok(ResolvedQuery {
                                    value: Arc::new(results),
                                    cached: false,
                                    coalesced: false,
                                    shard_micros: Some(computed.shard_micros),
                                    lookup_micros,
                                    exec_spans: computed.spans,
                                    pruning: computed.pruning,
                                    degraded: Some(info),
                                });
                            }
                        }
                        return Err(e);
                    }
                }
            }
        }
    }
}

fn query(state: &Arc<AppState>, request: &Request) -> Result<Response, ServerError> {
    let received = Instant::now();
    let body = body_json(request)?;
    if let Json::Arr(items) = &body {
        return query_batch(state, items, received);
    }
    // Counted on receipt — like batch items — so `queries` means
    // "queries that reached planning", whether or not they planned
    // cleanly.
    state.queries.fetch_add(1, Ordering::Relaxed);
    let trace_id = obs::new_trace_id();
    let plan_started = Instant::now();
    let planned = plan_query(state, &body);
    let plan_micros = plan_started.elapsed().as_micros() as u64;
    state.metrics.stage(obs::Stage::ParsePlan, plan_micros);
    let planned = planned?;
    // The trace ID rides the shard wire only for explained requests:
    // remote span collection is strictly opt-in per query, so the
    // distributed reply stays byte-identical for everyone else.
    let trace = planned.explain.then_some(trace_id.as_str());

    let started = Instant::now();
    let resolved = resolve_query(state, &planned, trace)?;
    let micros = started.elapsed().as_micros() as u64;

    let serialize_started = Instant::now();
    let mut response = query_response(
        &planned,
        &resolved.value,
        resolved.cached,
        resolved.coalesced,
        Some(micros),
        resolved.shard_micros.as_deref(),
        resolved.degraded.as_ref(),
    );
    let serialize_micros = serialize_started.elapsed().as_micros() as u64;
    state.metrics.stage(obs::Stage::Serialize, serialize_micros);
    let total_micros = received.elapsed().as_micros() as u64;
    state.metrics.requests.record(total_micros);

    if planned.explain {
        // One stitched tree: parse → cache → the fan-out (per-shard
        // spans, remote servers' own timings included) → serialize
        // (envelope assembly, measured just above).
        let outcome = match (resolved.cached, resolved.coalesced) {
            (true, true) => "coalesced",
            (true, false) => "hit",
            _ => "miss",
        };
        let mut root = Span::new("request", total_micros).with_detail(format!("trace {trace_id}"));
        root.push(Span::new(obs::Stage::ParsePlan.name(), plan_micros));
        root.push(
            Span::new(obs::Stage::CacheLookup.name(), resolved.lookup_micros).with_detail(outcome),
        );
        if !resolved.exec_spans.is_empty() {
            let mut fanout = Span::new("shard_fanout", micros);
            for span in resolved.exec_spans {
                fanout.push(span);
            }
            root.push(fanout);
        }
        root.push(Span::new(obs::Stage::Serialize.name(), serialize_micros));
        if let Json::Obj(fields) = &mut response {
            fields.push((
                "trace".to_owned(),
                obj([
                    ("trace_id", trace_id.as_str().into()),
                    ("spans", obs::spans_to_json(&[root])),
                    ("pruning", protocol::pruning_to_json(resolved.pruning)),
                ]),
            ));
        }
    }

    if state.slow_query_micros > 0 && total_micros >= state.slow_query_micros {
        eprintln!(
            "slow-query trace_id={trace_id} dataset={} query={} micros={total_micros} cached={}",
            planned.entry.id, planned.query_ast, resolved.cached
        );
    }
    Ok(ok(response))
}

/// Progress of one batch item through plan → singleflight → engine.
enum ItemProgress<'a> {
    Failed(ServerError),
    Ready {
        planned: PlannedQuery,
        value: Arc<Vec<TopKResult>>,
        cached: bool,
        coalesced: bool,
        /// The item's `degraded` block, present only when the item opted
        /// into partial answers and some shard had every replica down.
        degraded: Option<DegradedInfo>,
        /// The item's assembled `trace` object, present only when the
        /// item sent `"explain": true`.
        trace: Option<Json>,
    },
    Waiting(PlannedQuery, crate::cache::FlightWaiter),
    Leading(PlannedQuery, crate::cache::FlightGuard<'a>),
}

/// One batch item's `trace` envelope object (batch items share the
/// request's trace ID; each explained item carries the spans of how *it*
/// was resolved — its group's fan-out when it led, its cache outcome
/// otherwise).
fn item_trace(trace_id: &str, spans: &[Span], pruning: PruningSnapshot) -> Json {
    obj([
        ("trace_id", trace_id.into()),
        ("spans", obs::spans_to_json(spans)),
        ("pruning", protocol::pruning_to_json(pruning)),
    ])
}

fn query_batch(
    state: &Arc<AppState>,
    items: &[Json],
    received: Instant,
) -> Result<Response, ServerError> {
    if items.is_empty() {
        return Err(ServerError::bad_request(
            "batch must contain at least one query object",
        ));
    }
    if items.len() > state.max_batch {
        // Structured so clients can split and retry programmatically
        // instead of pattern-matching an error string.
        return Ok(Response::json(
            400,
            obj([
                (
                    "error",
                    format!(
                        "batch of {} queries exceeds this server's maximum of {}",
                        items.len(),
                        state.max_batch
                    )
                    .into(),
                ),
                ("code", "batch_too_large".into()),
                ("max_batch", state.max_batch.into()),
                ("batch_len", items.len().into()),
            ])
            .to_text(),
        ));
    }
    state
        .queries
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    let started = Instant::now();
    let trace_id = obs::new_trace_id();

    // Phase 1 — plan every item and run each through the singleflight
    // lookup, in order. Duplicate keys *within* the batch coalesce here
    // too: the first occurrence leads, later ones receive waiters on the
    // very flight this request is about to compute.
    let mut progress: Vec<ItemProgress<'_>> = items
        .iter()
        .map(|item| {
            let plan_started = Instant::now();
            let planned = plan_query(state, item);
            state.metrics.stage(
                obs::Stage::ParsePlan,
                plan_started.elapsed().as_micros() as u64,
            );
            let planned = match planned {
                Ok(planned) => planned,
                Err(e) => return ItemProgress::Failed(e),
            };
            let lookup_started = Instant::now();
            let lookup = state.cache.lookup(&planned.key);
            let lookup_micros = lookup_started.elapsed().as_micros() as u64;
            state.metrics.stage(obs::Stage::CacheLookup, lookup_micros);
            match lookup {
                Lookup::Hit(value) => {
                    let trace = planned.explain.then(|| {
                        let span = Span::new("cache_lookup", lookup_micros).with_detail("hit");
                        item_trace(&trace_id, &[span], PruningSnapshot::default())
                    });
                    ItemProgress::Ready {
                        planned,
                        value,
                        cached: true,
                        coalesced: false,
                        degraded: None,
                        trace,
                    }
                }
                Lookup::Pending(waiter) => ItemProgress::Waiting(planned, waiter),
                Lookup::Lead(guard) => ItemProgress::Leading(planned, guard),
            }
        })
        .collect();

    // Phase 2 — execute every lead through the engine's batched path,
    // grouped by (dataset registration, effective options): each group is
    // one pass over its trendline collection, sharing the GROUP stage
    // across all its queries. `generation` is globally unique, so it
    // alone pins the dataset; the fingerprint pins every result-affecting
    // option.
    let mut groups: HashMap<(u64, String), Vec<usize>> = HashMap::new();
    for (i, p) in progress.iter().enumerate() {
        if let ItemProgress::Leading(planned, _) = p {
            groups
                .entry((planned.entry.generation, planned.key.options_fp.clone()))
                .or_default()
                .push(i);
        }
    }
    for indices in groups.into_values() {
        let specs: Vec<(ShapeQuery, usize)> = indices
            .iter()
            .map(|&i| match &progress[i] {
                ItemProgress::Leading(planned, _) => (planned.query_ast.clone(), planned.k),
                _ => unreachable!("group members are leads"),
            })
            .collect();
        let (entry, mut options) = match &progress[indices[0]] {
            ItemProgress::Leading(planned, _) => {
                (Arc::clone(&planned.entry), planned.options.clone())
            }
            _ => unreachable!("group members are leads"),
        };
        // Batch execution policy: a group's work is parallel by default —
        // multi-shard datasets fan their shard tasks across the compute
        // pool, and a single-shard group carrying several queries gets
        // the engine's viz-level parallelism on top of the shared GROUP
        // pass. Scores are scheduling-invariant (`parallel` is excluded
        // from the cache fingerprint for the same reason), so results
        // stay byte-identical to sequential runs. An explicit
        // `"parallel": false` on any group member is an opt-out (a
        // client capping its CPU footprint) and wins over the default.
        let opted_out = indices
            .iter()
            .any(|&i| matches!(&progress[i], ItemProgress::Leading(p, _) if p.parallel_opt_out));
        if opted_out {
            options.parallel = false;
        } else if specs.len() > 1 {
            options.parallel = true;
        }
        // One member asking for `explain` traces the whole group's
        // fan-out — the computation is shared, so its spans are too.
        let traced = indices
            .iter()
            .any(|&i| matches!(&progress[i], ItemProgress::Leading(p, _) if p.explain));
        let exec = execute_on_shards(
            state,
            &entry,
            specs,
            &options,
            opted_out,
            &[],
            traced.then_some(trace_id.as_str()),
        );
        let group_spans = exec.spans;
        let group_pruning = exec.pruning;
        for ((&i, outcome), fallback) in indices.iter().zip(exec.outcomes).zip(exec.degraded) {
            let ItemProgress::Leading(planned, guard) = std::mem::replace(
                &mut progress[i],
                ItemProgress::Failed(ServerError::internal("batch item resolved twice")),
            ) else {
                unreachable!("group members are leads");
            };
            progress[i] = match outcome {
                Ok(results) => {
                    let value = Arc::new(results);
                    guard.complete(Arc::clone(&value));
                    let trace = planned
                        .explain
                        .then(|| item_trace(&trace_id, &group_spans, group_pruning));
                    ItemProgress::Ready {
                        planned,
                        value,
                        cached: false,
                        coalesced: false,
                        degraded: None,
                        trace,
                    }
                }
                Err(e) => {
                    // Dropping the guard publishes the failure and frees
                    // the key for the next attempt — which is also what
                    // keeps a degraded partial out of the cache when the
                    // item opted into one below.
                    drop(guard);
                    match (planned.partial, fallback) {
                        (true, Some(DegradedQuery { results, info })) => {
                            let trace = planned
                                .explain
                                .then(|| item_trace(&trace_id, &group_spans, group_pruning));
                            ItemProgress::Ready {
                                planned,
                                value: Arc::new(results),
                                cached: false,
                                coalesced: false,
                                degraded: Some(info),
                                trace,
                            }
                        }
                        _ => ItemProgress::Failed(e),
                    }
                }
            };
        }
    }

    // Phase 3 — only now that every lead this request owns has been
    // completed do we block on foreign (or own, for in-batch duplicates)
    // flights. Completing before waiting means two requests leading
    // different keys and waiting on each other's can never deadlock.
    for p in progress.iter_mut() {
        if !matches!(p, ItemProgress::Waiting(..)) {
            continue;
        }
        let ItemProgress::Waiting(planned, waiter) = std::mem::replace(
            p,
            ItemProgress::Failed(ServerError::internal("batch item resolved twice")),
        ) else {
            unreachable!("matched Waiting above");
        };
        let wait_started = Instant::now();
        let outcome = waiter.wait();
        let wait_micros = wait_started.elapsed().as_micros() as u64;
        *p = match outcome {
            Some(value) => {
                let trace = planned.explain.then(|| {
                    let span = Span::new("cache_lookup", wait_micros).with_detail("coalesced");
                    item_trace(&trace_id, &[span], PruningSnapshot::default())
                });
                ItemProgress::Ready {
                    planned,
                    value,
                    cached: true,
                    coalesced: true,
                    degraded: None,
                    trace,
                }
            }
            // Leader failed: re-contend through the singleflight so the
            // retry is a counted miss (or re-coalesces onto whoever wins).
            None => {
                let trace = planned.explain.then_some(trace_id.as_str());
                match resolve_query(state, &planned, trace) {
                    Ok(resolved) => {
                        let trace = planned
                            .explain
                            .then(|| item_trace(&trace_id, &resolved.exec_spans, resolved.pruning));
                        ItemProgress::Ready {
                            planned,
                            value: resolved.value,
                            cached: resolved.cached,
                            coalesced: resolved.coalesced,
                            degraded: resolved.degraded,
                            trace,
                        }
                    }
                    Err(e) => ItemProgress::Failed(e),
                }
            }
        };
    }

    let micros = started.elapsed().as_micros() as u64;
    let serialize_started = Instant::now();
    let responses: Vec<Json> = progress
        .iter()
        .map(|p| match p {
            ItemProgress::Ready {
                planned,
                value,
                cached,
                coalesced,
                degraded,
                trace,
            } => {
                let mut item = query_response(
                    planned,
                    value,
                    *cached,
                    *coalesced,
                    None,
                    None,
                    degraded.as_ref(),
                );
                if let (Some(trace), Json::Obj(fields)) = (trace, &mut item) {
                    fields.push(("trace".into(), trace.clone()));
                }
                item
            }
            ItemProgress::Failed(e) => protocol::error_item_to_json(e),
            ItemProgress::Waiting(..) | ItemProgress::Leading(..) => {
                unreachable!("all items resolved before assembly")
            }
        })
        .collect();
    let response = ok(obj([
        ("batch", items.len().into()),
        ("micros", micros.into()),
        ("responses", Json::Arr(responses)),
    ]));
    state.metrics.stage(
        obs::Stage::Serialize,
        serialize_started.elapsed().as_micros() as u64,
    );
    let total_micros = received.elapsed().as_micros() as u64;
    state.metrics.requests.record(total_micros);
    if state.slow_query_micros > 0 && total_micros >= state.slow_query_micros {
        eprintln!(
            "slow-query trace_id={trace_id} batch={} micros={total_micros}",
            items.len()
        );
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "z,x,y\\na,1,1\\na,2,3\\na,3,1\\nb,1,3\\nb,2,2\\nb,3,1\\n";

    fn state() -> Arc<AppState> {
        Arc::new(AppState::new(16, 2, None, 1))
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn register(state: &Arc<AppState>) {
        let body = format!(r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y"}}"#);
        let resp = route(state, &post("/datasets", &body));
        assert_eq!(resp.status, 201, "{}", resp.body);
    }

    #[test]
    fn full_route_cycle() {
        let state = state();
        register(&state);

        let listing = route(&state, &get("/datasets"));
        assert_eq!(listing.status, 200);
        assert!(listing.body.contains("\"id\":\"t1\""), "{}", listing.body);

        let q = r#"{"dataset":"t1","query":"[p=up][p=down]","k":1}"#;
        let first = route(&state, &post("/query", q));
        assert_eq!(first.status, 200, "{}", first.body);
        assert!(first.body.contains("\"cached\":false"), "{}", first.body);
        assert!(first.body.contains("\"key\":\"a\""), "{}", first.body);

        let second = route(&state, &post("/query", q));
        assert!(second.body.contains("\"cached\":true"), "{}", second.body);

        let health = route(&state, &get("/healthz"));
        assert!(health.body.contains("\"hits\":1"), "{}", health.body);
        assert!(health.body.contains("\"misses\":1"), "{}", health.body);
        assert!(health.body.contains("\"queries\":2"), "{}", health.body);
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let state = state();
        let resp = route(&state, &get("/healthz?verbose=1"));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn path_registration_is_gated_by_data_root() {
        let dir = std::env::temp_dir().join(format!("ss-data-root-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inside = dir.join("ok.csv");
        std::fs::write(&inside, "z,x,y\na,1,1\na,2,2\n").unwrap();
        let body = |path: &std::path::Path| {
            format!(
                r#"{{"name":"p","id":"p1","path":"{}","z":"z","x":"x","y":"y"}}"#,
                path.display()
            )
        };

        // Without a data root, HTTP path registration is refused.
        let closed = state();
        let resp = route(&closed, &post("/datasets", &body(&inside)));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("disabled"), "{}", resp.body);

        // With a data root: inside is allowed, escapes are not.
        let open = Arc::new(AppState::new(16, 2, Some(dir.clone()), 1));
        let resp = route(&open, &post("/datasets", &body(&inside)));
        assert_eq!(resp.status, 201, "{}", resp.body);
        let escape = dir.join("..").join("outside.csv");
        std::fs::write(dir.parent().unwrap().join("outside.csv"), "z,x,y\na,1,1\n").unwrap();
        let resp = route(&open, &post("/datasets", &body(&escape)));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("data root"), "{}", resp.body);

        std::fs::remove_file(dir.parent().unwrap().join("outside.csv")).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_inflight_insert_cannot_poison_new_generation() {
        let state = state();
        register(&state);
        let old = state.catalog.get("t1").unwrap();
        let q = shapesearch_parser::parse_regex("[p=up]").unwrap();
        let old_key = CacheKey::new(
            &old.id,
            old.generation,
            old.shard_count,
            &old.placement_fp,
            &q,
            1,
            &state.default_options,
        );
        // Re-register (bumps the generation), then emulate a slow
        // in-flight query against the OLD engine finishing late and
        // inserting its stale results.
        register(&state);
        state.cache.insert(old_key, Arc::new(Vec::new()));
        // A fresh query keys on the new generation: it must recompute,
        // not hit the stale entry.
        let resp = route(
            &state,
            &post("/query", r#"{"dataset":"t1","query":"[p=up]","k":1}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"cached\":false"), "{}", resp.body);
        assert!(resp.body.contains("\"results\":[{"), "{}", resp.body);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let state = state();
        assert_eq!(route(&state, &get("/nope")).status, 404);
        assert_eq!(route(&state, &get("/query")).status, 405);
        assert_eq!(route(&state, &post("/healthz", "")).status, 405);
    }

    #[test]
    fn bad_query_bodies_are_400() {
        let state = state();
        register(&state);
        for body in [
            "not json",
            r#"{"dataset":"t1"}"#,
            r#"{"dataset":"t1","query":"[p=bogus...""#,
            r#"{"dataset":"t1","query":"[p=up]","algo":"warp"}"#,
        ] {
            let resp = route(&state, &post("/query", body));
            assert_eq!(resp.status, 400, "body `{body}` → {}", resp.body);
        }
        let resp = route(
            &state,
            &post("/query", r#"{"dataset":"missing","query":"[p=up]"}"#),
        );
        assert_eq!(resp.status, 404);
        // `queries` counts every query that reached planning — the three
        // well-formed JSON bodies above — matching how batch items are
        // counted; unparseable bodies never become queries. None of them
        // touched the cache.
        assert_eq!(state.queries.load(Ordering::Relaxed), 3);
        let stats = state.cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.coalesced), (0, 0, 0));
    }

    #[test]
    fn reregistering_dataset_invalidates_cache() {
        let state = state();
        register(&state);
        let q = r#"{"dataset":"t1","query":"[p=up]","k":1}"#;
        route(&state, &post("/query", q));
        assert_eq!(state.cache.stats().entries, 1);
        register(&state);
        assert_eq!(state.cache.stats().entries, 0);
    }

    #[test]
    fn batch_route_mixes_hits_misses_and_errors() {
        let state = state();
        register(&state);
        // Warm one key so the batch sees a genuine hit.
        let warm = route(
            &state,
            &post("/query", r#"{"dataset":"t1","query":"[p=up]","k":1}"#),
        );
        assert_eq!(warm.status, 200, "{}", warm.body);

        let body = r#"[
            {"dataset":"t1","query":"[p=up]","k":1},
            {"dataset":"t1","query":"[p=up][p=down]","k":2},
            {"dataset":"t1","query":"[p=up][p=down]","k":2},
            {"dataset":"missing","query":"[p=up]"},
            {"dataset":"t1","query":"[p=bogus"}
        ]"#;
        let resp = route(&state, &post("/query", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("batch").unwrap().as_usize(), Some(5));
        let responses = parsed.get("responses").unwrap().as_array().unwrap();
        assert_eq!(responses.len(), 5);

        // Item 0 was warmed: a hit.
        assert_eq!(responses[0].get("cached").unwrap().as_bool(), Some(true));
        // Item 1 is the cold lead; item 2 is its in-batch duplicate.
        assert_eq!(responses[1].get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(responses[2].get("coalesced").unwrap().as_bool(), Some(true));
        assert_eq!(
            responses[1].get("results").unwrap().to_text(),
            responses[2].get("results").unwrap().to_text(),
            "duplicate items share one computation's results"
        );
        // Items 3 and 4 fail per-item without sinking the batch.
        assert_eq!(responses[3].get("status").unwrap().as_usize(), Some(404));
        assert_eq!(responses[4].get("status").unwrap().as_usize(), Some(400));

        // Counters: 1 warm single + 5 batch items; the duplicate counted
        // as coalesced, not as a second miss.
        let stats = state.cache.stats();
        assert_eq!(stats.misses, 2, "warm miss + one batch lead");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.coalesced, 1);
        assert_eq!(state.queries.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn batch_equals_sequential_results() {
        let state = state();
        register(&state);
        let queries = ["[p=up]", "[p=up][p=down]", "[p=down][p=up]"];
        let sequential: Vec<String> = queries
            .iter()
            .map(|q| {
                let resp = route(
                    &state,
                    &post(
                        "/query",
                        &format!(r#"{{"dataset":"t1","query":"{q}","k":2}}"#),
                    ),
                );
                assert_eq!(resp.status, 200, "{}", resp.body);
                let body = json::parse(&resp.body).unwrap();
                body.get("results").unwrap().to_text()
            })
            .collect();

        // Re-register to clear the cache: the batch recomputes cold.
        register(&state);
        let items: Vec<String> = queries
            .iter()
            .map(|q| format!(r#"{{"dataset":"t1","query":"{q}","k":2}}"#))
            .collect();
        let resp = route(&state, &post("/query", &format!("[{}]", items.join(","))));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = json::parse(&resp.body).unwrap();
        let responses = parsed.get("responses").unwrap().as_array().unwrap();
        for (got, want) in responses.iter().zip(&sequential) {
            assert_eq!(got.get("cached").unwrap().as_bool(), Some(false));
            assert_eq!(&got.get("results").unwrap().to_text(), want);
        }
    }

    #[test]
    fn oversized_batch_gets_structured_400() {
        let mut raw = AppState::new(16, 2, None, 1);
        raw.max_batch = 3;
        let state = Arc::new(raw);
        register(&state);
        let item = r#"{"dataset":"t1","query":"[p=up]","k":1}"#;
        let body = format!("[{item},{item},{item},{item}]");
        let resp = route(&state, &post("/query", &body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        let parsed = json::parse(&resp.body).unwrap();
        assert_eq!(
            parsed.get("code").unwrap().as_str(),
            Some("batch_too_large")
        );
        assert_eq!(parsed.get("max_batch").unwrap().as_usize(), Some(3));
        assert_eq!(parsed.get("batch_len").unwrap().as_usize(), Some(4));
        // An exactly-at-limit batch is fine.
        let ok_body = format!("[{item},{item},{item}]");
        assert_eq!(route(&state, &post("/query", &ok_body)).status, 200);
        // And an empty batch is a plain 400.
        assert_eq!(route(&state, &post("/query", "[]")).status, 400);
    }

    #[test]
    fn concurrent_identical_cold_queries_compute_once() {
        let state = state();
        register(&state);
        let n = 8;
        let bodies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let state = Arc::clone(&state);
                    scope.spawn(move || {
                        let resp = route(
                            &state,
                            &post(
                                "/query",
                                r#"{"dataset":"t1","query":"[p=up][p=down]","k":2}"#,
                            ),
                        );
                        assert_eq!(resp.status, 200, "{}", resp.body);
                        resp.body
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Every response carries identical results.
        let reference = json::parse(&bodies[0])
            .unwrap()
            .get("results")
            .unwrap()
            .to_text();
        for body in &bodies {
            let parsed = json::parse(body).unwrap();
            assert_eq!(parsed.get("results").unwrap().to_text(), reference);
        }
        // Exactly one engine computation happened: one miss elected one
        // leader; everyone else hit or coalesced.
        let stats = state.cache.stats();
        assert_eq!(stats.misses, 1, "stampede must elect exactly one leader");
        assert_eq!(stats.hits + stats.coalesced, n - 1);
    }

    #[test]
    fn nl_query_round_trips() {
        let state = state();
        register(&state);
        let q = r#"{"dataset":"t1","nl":"rising then falling","k":1}"#;
        let resp = route(&state, &post("/query", q));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"results\""), "{}", resp.body);
    }

    fn register_sharded(state: &Arc<AppState>, id: &str, shards: usize) {
        let body = format!(
            r#"{{"name":"t","id":"{id}","csv":"{CSV}","z":"z","x":"x","y":"y","shards":{shards}}}"#
        );
        let resp = route(state, &post("/datasets", &body));
        assert_eq!(resp.status, 201, "{}", resp.body);
        let parsed = json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("shards").unwrap().as_usize(), Some(shards));
    }

    #[test]
    fn sharded_execution_reports_and_matches_single_shard() {
        let state = state();
        register_sharded(&state, "one", 1);
        register_sharded(&state, "two", 2);

        let q = |ds: &str| format!(r#"{{"dataset":"{ds}","query":"[p=up][p=down]","k":2}}"#);
        let single = route(&state, &post("/query", &q("one")));
        let sharded = route(&state, &post("/query", &q("two")));
        assert_eq!(single.status, 200, "{}", single.body);
        assert_eq!(sharded.status, 200, "{}", sharded.body);

        let single = json::parse(&single.body).unwrap();
        let sharded = json::parse(&sharded.body).unwrap();
        // Identical answers, shard count reported, per-shard timings on
        // the computing response.
        assert_eq!(
            single.get("results").unwrap().to_text(),
            sharded.get("results").unwrap().to_text(),
            "sharded execution must be result-identical"
        );
        assert_eq!(sharded.get("shards").unwrap().as_usize(), Some(2));
        assert_eq!(
            sharded
                .get("shard_micros")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2,
            "one timing per shard"
        );

        // A cache hit reports shards but no per-shard timing (it did no
        // shard work).
        let warm = route(&state, &post("/query", &q("two")));
        let warm = json::parse(&warm.body).unwrap();
        assert_eq!(warm.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(warm.get("shards").unwrap().as_usize(), Some(2));
        assert!(warm.get("shard_micros").is_none());

        // Batches over a sharded dataset match too.
        let batch = route(
            &state,
            &post("/query", &format!("[{},{}]", q("one"), q("two"))),
        );
        let batch = json::parse(&batch.body).unwrap();
        let responses = batch.get("responses").unwrap().as_array().unwrap();
        assert_eq!(
            responses[0].get("results").unwrap().to_text(),
            responses[1].get("results").unwrap().to_text()
        );

        // Healthz: shard gauges under one snapshot, per-dataset totals.
        let health = route(&state, &get("/healthz"));
        let parsed = json::parse(&health.body).unwrap();
        let shards = parsed.get("shards").unwrap();
        assert_eq!(shards.get("dataset_shards").unwrap().as_usize(), Some(3));
        assert_eq!(shards.get("compute_workers").unwrap().as_usize(), Some(2));
        // one single-shard task + two shard tasks (the warm hit did none).
        assert!(shards.get("tasks").unwrap().as_usize().unwrap() >= 3);
        let cache = parsed.get("cache").unwrap();
        let lookups = cache.get("lookups").unwrap().as_usize().unwrap();
        let sum = cache.get("hits").unwrap().as_usize().unwrap()
            + cache.get("misses").unwrap().as_usize().unwrap()
            + cache.get("coalesced").unwrap().as_usize().unwrap();
        assert_eq!(lookups, sum, "{}", health.body);
    }

    #[test]
    fn shard_query_route_returns_mergeable_partials() {
        let state = state();
        register_sharded(&state, "t1", 2);

        // The same group over /query (merged) and /shard/query (partials
        // of the whole 2-shard entry — a shard server is just a server).
        let merged = route(
            &state,
            &post(
                "/query",
                r#"{"dataset":"t1","query":"[p=up][p=down]","k":2}"#,
            ),
        );
        assert_eq!(merged.status, 200, "{}", merged.body);
        let merged = json::parse(&merged.body).unwrap();

        let rpc_body = protocol::shard_request_to_json(
            "t1",
            &[(
                shapesearch_parser::parse_regex("[p=up][p=down]").unwrap(),
                2,
            )],
            &[None],
            &state.default_options,
            None,
        );
        let reply = route(&state, &post("/shard/query", &rpc_body.to_text()));
        assert_eq!(reply.status, 200, "{}", reply.body);
        // The reply carries its engine-side pruning counters.
        assert!(reply.body.contains("\"pruning\":{"), "{}", reply.body);
        let parsed = json::parse(&reply.body).unwrap();
        let partials = protocol::shard_outcomes_from_json(&parsed, 1).unwrap();
        // No hint was sent, so no hint debt can exist.
        assert_eq!(partials.pruned_bounds, vec![None]);
        let partial = partials.outcomes[0].as_ref().unwrap();
        // This entry holds the WHOLE collection, so its "partial" is
        // already the global answer — byte-identical to /query's.
        assert_eq!(
            protocol::results_to_json(partial).to_text(),
            merged.get("results").unwrap().to_text()
        );
        // Shard RPCs are counted apart from user queries.
        assert_eq!(state.shard_queries.load(Ordering::Relaxed), 1);
        assert_eq!(state.queries.load(Ordering::Relaxed), 1);
        // And they bypass the result cache entirely.
        assert_eq!(state.cache.stats().lookups, 1, "only /query looked up");

        // Per-query engine errors ride inside a 200 envelope.
        let rpc_body = protocol::shard_request_to_json(
            "t1",
            &[(
                shapesearch_core::ShapeQuery::pattern(shapesearch_core::Pattern::Udp(
                    "nope".into(),
                )),
                1,
            )],
            &[None],
            &state.default_options,
            None,
        );
        let reply = route(&state, &post("/shard/query", &rpc_body.to_text()));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let partials =
            protocol::shard_outcomes_from_json(&json::parse(&reply.body).unwrap(), 1).unwrap();
        assert_eq!(partials.outcomes[0].as_ref().unwrap_err().status, 400);

        // Envelope-level failures: unknown dataset 404, malformed 400,
        // wrong method 405.
        let missing = rpc_body.to_text().replace("\"t1\"", "\"ghost\"");
        assert_eq!(route(&state, &post("/shard/query", &missing)).status, 404);
        assert_eq!(route(&state, &post("/shard/query", "{}")).status, 400);
        assert_eq!(route(&state, &get("/shard/query")).status, 405);
    }

    #[test]
    fn remote_placement_fans_out_over_http_and_degrades_structurally() {
        // A live in-process "shard server" owning partition 1 of 2…
        let shard_server = crate::serve(
            "127.0.0.1:0",
            crate::ServerConfig {
                workers: 2,
                ..crate::ServerConfig::default()
            },
        )
        .unwrap();
        let body = format!(
            r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y","shard_of":"1/2"}}"#
        );
        let reply = route(shard_server.state(), &post("/datasets", &body));
        assert_eq!(reply.status, 201, "{}", reply.body);

        // …and a router whose dataset places shard 0 locally and shard 1
        // on that server.
        let router = state();
        let body = format!(
            r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y",
                 "shard_endpoints":["local","{}"]}}"#,
            shard_server.addr()
        );
        let reply = route(&router, &post("/datasets", &body));
        assert_eq!(reply.status, 201, "{}", reply.body);
        assert!(
            reply.body.contains(&format!("\"{}\"", shard_server.addr())),
            "{}",
            reply.body
        );

        // Reference: the same dataset, all-local.
        register_sharded(&router, "ref", 2);
        let q = |ds: &str| format!(r#"{{"dataset":"{ds}","query":"[p=up][p=down]","k":2}}"#);
        let want = route(&router, &post("/query", &q("ref")));
        let got = route(&router, &post("/query", &q("t1")));
        assert_eq!(got.status, 200, "{}", got.body);
        let want = json::parse(&want.body).unwrap();
        let got = json::parse(&got.body).unwrap();
        assert_eq!(
            got.get("results").unwrap().to_text(),
            want.get("results").unwrap().to_text(),
            "mixed placement must be byte-identical to all-local"
        );

        // Healthz gained the endpoint's gauges.
        let health = route(&router, &get("/healthz"));
        let parsed = json::parse(&health.body).unwrap();
        let remote = parsed.get("remote_shards").unwrap();
        assert_eq!(remote.get("endpoints").unwrap().as_usize(), Some(1));
        assert_eq!(remote.get("requests").unwrap().as_usize(), Some(1));
        assert_eq!(remote.get("errors").unwrap().as_usize(), Some(0));
        let by = remote.get("by_endpoint").unwrap().as_array().unwrap();
        assert_eq!(
            by[0].get("endpoint").unwrap().as_str(),
            Some(shard_server.addr().to_string().as_str())
        );

        // Kill the shard server: the next *cold* query degrades to a
        // structured shard_unavailable naming the endpoint, and nothing
        // poisons the cache.
        let endpoint = shard_server.addr().to_string();
        shard_server.shutdown();
        let cold = route(
            &router,
            &post(
                "/query",
                r#"{"dataset":"t1","query":"[p=down][p=up]","k":1}"#,
            ),
        );
        assert_eq!(cold.status, 502, "{}", cold.body);
        assert!(
            cold.body.contains("\"code\":\"shard_unavailable\""),
            "{}",
            cold.body
        );
        assert!(cold.body.contains(&endpoint), "{}", cold.body);

        // The warmed key still hits; the failure did not evict it.
        let warm = route(&router, &post("/query", &q("t1")));
        assert!(warm.body.contains("\"cached\":true"), "{}", warm.body);
    }

    #[test]
    fn failover_to_a_live_replica_keeps_results_exact() {
        // A live shard server owning partition 1 of 2…
        let shard_server = crate::serve(
            "127.0.0.1:0",
            crate::ServerConfig {
                workers: 2,
                ..crate::ServerConfig::default()
            },
        )
        .unwrap();
        let body = format!(
            r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y","shard_of":"1/2"}}"#
        );
        assert_eq!(
            route(shard_server.state(), &post("/datasets", &body)).status,
            201
        );

        // …and a router that lists a dead replica FIRST, so every cold
        // query must fail over to reach the live one.
        let router = state();
        let body = format!(
            r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y",
                 "shard_endpoints":["local",["127.0.0.1:1","{}"]]}}"#,
            shard_server.addr()
        );
        let reply = route(&router, &post("/datasets", &body));
        assert_eq!(reply.status, 201, "{}", reply.body);
        // The 201 reply names the replica set in placement order.
        assert!(
            reply
                .body
                .contains(&format!("\"127.0.0.1:1|{}\"", shard_server.addr())),
            "{}",
            reply.body
        );

        register_sharded(&router, "ref", 2);
        let q = |ds: &str| format!(r#"{{"dataset":"{ds}","query":"[p=up][p=down]","k":2}}"#);
        let want = route(&router, &post("/query", &q("ref")));
        let got = route(&router, &post("/query", &q("t1")));
        assert_eq!(got.status, 200, "{}", got.body);
        let want = json::parse(&want.body).unwrap();
        let got = json::parse(&got.body).unwrap();
        assert_eq!(
            got.get("results").unwrap().to_text(),
            want.get("results").unwrap().to_text(),
            "failover must be byte-identical to all-local"
        );

        // Healthz books the whole failover trail: one failed attempt on
        // the dead replica, one clean request on the live one, and the
        // totals reconcile with the per-endpoint rows.
        let health = route(&router, &get("/healthz"));
        let parsed = json::parse(&health.body).unwrap();
        let remote = parsed.get("remote_shards").unwrap();
        assert_eq!(remote.get("endpoints").unwrap().as_usize(), Some(2));
        let by = remote.get("by_endpoint").unwrap().as_array().unwrap();
        let row = |endpoint: &str| {
            by.iter()
                .find(|row| row.get("endpoint").unwrap().as_str() == Some(endpoint))
                .unwrap_or_else(|| panic!("no healthz row for {endpoint}: {}", health.body))
        };
        let dead = row("127.0.0.1:1");
        assert_eq!(dead.get("requests").unwrap().as_usize(), Some(1));
        assert_eq!(dead.get("errors").unwrap().as_usize(), Some(1));
        assert_eq!(
            dead.get("consecutive_failures").unwrap().as_usize(),
            Some(1)
        );
        let live = row(&shard_server.addr().to_string());
        assert_eq!(live.get("requests").unwrap().as_usize(), Some(1));
        assert_eq!(live.get("errors").unwrap().as_usize(), Some(0));
        assert_eq!(live.get("ejected").unwrap().as_bool(), Some(false));
        let total: usize = by
            .iter()
            .map(|row| row.get("requests").unwrap().as_usize().unwrap())
            .sum();
        assert_eq!(remote.get("requests").unwrap().as_usize(), Some(total));

        shard_server.shutdown();
    }

    #[test]
    fn partial_opt_in_turns_total_replica_loss_into_a_degraded_200() {
        // Shard 0 local, shard 1's every replica dead.
        let router = state();
        let body = format!(
            r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y",
                 "shard_endpoints":["local",["127.0.0.1:1","127.0.0.1:2"]]}}"#
        );
        assert_eq!(route(&router, &post("/datasets", &body)).status, 201);

        // Without the flag: a structured 502 naming BOTH attempted
        // replicas, in try order.
        let plain = r#"{"dataset":"t1","query":"[p=up][p=down]","k":2}"#;
        let refused = route(&router, &post("/query", plain));
        assert_eq!(refused.status, 502, "{}", refused.body);
        assert!(
            refused.body.contains("\"code\":\"shard_unavailable\""),
            "{}",
            refused.body
        );
        assert!(refused.body.contains("127.0.0.1:1"), "{}", refused.body);
        assert!(refused.body.contains("127.0.0.1:2"), "{}", refused.body);

        // With it: a 200 flagged degraded, naming the missing partition
        // and carrying shard 0's merged partial.
        let partial = r#"{"dataset":"t1","query":"[p=up][p=down]","k":2,"partial":true}"#;
        let degraded = route(&router, &post("/query", partial));
        assert_eq!(degraded.status, 200, "{}", degraded.body);
        let parsed = json::parse(&degraded.body).unwrap();
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(false));
        let block = parsed
            .get("degraded")
            .unwrap_or_else(|| panic!("no degraded block: {}", degraded.body));
        assert_eq!(
            block.get("missing_shards").unwrap().to_text(),
            "[1]",
            "{}",
            degraded.body
        );
        let errors = block.get("errors").unwrap().as_array().unwrap();
        assert_eq!(errors[0].get("shard").unwrap().as_usize(), Some(1));
        assert!(
            errors[0]
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("127.0.0.1:1"),
            "{}",
            degraded.body
        );
        assert!(
            !parsed
                .get("results")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "the responsive shard's partial must be served: {}",
            degraded.body
        );

        // NEVER cached: an identical repeat recomputes from scratch
        // (a later exact answer must not be masked by a stale partial).
        let repeat = route(&router, &post("/query", partial));
        let repeat = json::parse(&repeat.body).unwrap();
        assert_eq!(
            repeat.get("cached").unwrap().as_bool(),
            Some(false),
            "degraded answers must never be cached"
        );
        assert_eq!(router.cache.stats().hits, 0);

        // Batch: the opted-in item degrades, the plain item keeps its
        // structured 502 — per item, same request.
        let reply = route(&router, &post("/query", &format!("[{partial},{plain}]")));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let batch = json::parse(&reply.body).unwrap();
        let responses = batch.get("responses").unwrap().as_array().unwrap();
        assert!(responses[0].get("degraded").is_some(), "{}", reply.body);
        assert_eq!(
            responses[1].get("status").and_then(|s| s.as_usize()),
            Some(502),
            "{}",
            reply.body
        );
    }

    #[test]
    fn heartbeat_discovery_resolves_a_queryable_placement() {
        // Two live shard servers, each announcing its partition to the
        // router's registry the way `serve --announce` would.
        let mut servers = Vec::new();
        for index in 0..2 {
            let server = crate::serve(
                "127.0.0.1:0",
                crate::ServerConfig {
                    workers: 2,
                    ..crate::ServerConfig::default()
                },
            )
            .unwrap();
            let body = format!(
                r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y","shard_of":"{index}/2"}}"#
            );
            assert_eq!(route(server.state(), &post("/datasets", &body)).status, 201);
            servers.push(server);
        }

        let router = state();
        for (index, server) in servers.iter().enumerate() {
            let beat = format!(
                r#"{{"dataset":"t1","shard_of":"{index}/2","endpoint":"{}"}}"#,
                server.addr()
            );
            let reply = route(&router, &post("/registry/heartbeat", &beat));
            assert_eq!(reply.status, 200, "{}", reply.body);
            assert!(reply.body.contains("\"registered\":true"), "{}", reply.body);
        }

        // The registry lists both rows as fresh, with the TTL.
        let listing = route(&router, &get("/registry"));
        assert_eq!(listing.status, 200, "{}", listing.body);
        let parsed = json::parse(&listing.body).unwrap();
        assert_eq!(
            parsed.get("entries").unwrap().as_array().unwrap().len(),
            2,
            "{}",
            listing.body
        );
        assert!(listing.body.contains("\"fresh\":true"), "{}", listing.body);
        assert_eq!(
            parsed.get("ttl_secs").unwrap().as_usize(),
            Some(REGISTRY_TTL_SECS as usize)
        );

        // Registering with the `registry` sentinel resolves the announced
        // placement, and the dataset answers exactly like an all-local
        // twin.
        let body = format!(
            r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y",
                 "shard_endpoints":"registry"}}"#
        );
        let reply = route(&router, &post("/datasets", &body));
        assert_eq!(reply.status, 201, "{}", reply.body);
        for server in &servers {
            assert!(
                reply.body.contains(&server.addr().to_string()),
                "{}",
                reply.body
            );
        }
        register_sharded(&router, "ref", 2);
        let q = |ds: &str| format!(r#"{{"dataset":"{ds}","query":"[p=up][p=down]","k":2}}"#);
        let want = route(&router, &post("/query", &q("ref")));
        let got = route(&router, &post("/query", &q("t1")));
        assert_eq!(got.status, 200, "{}", got.body);
        assert_eq!(
            json::parse(&got.body)
                .unwrap()
                .get("results")
                .unwrap()
                .to_text(),
            json::parse(&want.body)
                .unwrap()
                .get("results")
                .unwrap()
                .to_text(),
            "registry-resolved placement must be byte-identical to all-local"
        );

        // Without any fresh heartbeat the sentinel is a structured 400.
        let empty = state();
        let reply = route(&empty, &post("/datasets", &body));
        assert_eq!(reply.status, 400, "{}", reply.body);
        assert!(reply.body.contains("no fresh heartbeat"), "{}", reply.body);

        // Malformed heartbeats are 400s; wrong methods 405.
        let bad = r#"{"dataset":"t1","shard_of":"2/2","endpoint":"h:1"}"#;
        assert_eq!(
            route(&router, &post("/registry/heartbeat", bad)).status,
            400
        );
        assert_eq!(route(&router, &get("/registry/heartbeat")).status, 405);
        assert_eq!(route(&router, &post("/registry", "{}")).status, 405);

        for server in servers {
            server.shutdown();
        }
    }

    #[test]
    fn healthz_surfaces_registry_staleness_per_slot() {
        let state = state();

        // Before any heartbeat the registry block is present but empty.
        let health = route(&state, &get("/healthz"));
        let parsed = json::parse(&health.body).unwrap();
        let registry = parsed.get("registry").unwrap();
        assert_eq!(registry.get("slots").unwrap().as_usize(), Some(0));
        assert_eq!(registry.get("stale_slots").unwrap().as_usize(), Some(0));
        assert!(registry
            .get("by_slot")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        // Two replicas of slot 0, one of slot 1 — the rollup aggregates
        // per (dataset, shard, shards) key in deterministic order.
        for beat in [
            r#"{"dataset":"t1","shard_of":"0/2","endpoint":"a:1"}"#,
            r#"{"dataset":"t1","shard_of":"0/2","endpoint":"a:2"}"#,
            r#"{"dataset":"t1","shard_of":"1/2","endpoint":"b:1"}"#,
        ] {
            assert_eq!(
                route(&state, &post("/registry/heartbeat", beat)).status,
                200
            );
        }
        let health = route(&state, &get("/healthz"));
        let parsed = json::parse(&health.body).unwrap();
        let registry = parsed.get("registry").unwrap();
        assert_eq!(registry.get("slots").unwrap().as_usize(), Some(2));
        assert_eq!(registry.get("stale_slots").unwrap().as_usize(), Some(0));
        let by_slot = registry.get("by_slot").unwrap().as_array().unwrap();
        assert_eq!(by_slot.len(), 2, "{}", health.body);
        let slot0 = &by_slot[0];
        assert_eq!(slot0.get("dataset").unwrap().as_str(), Some("t1"));
        assert_eq!(slot0.get("shard").unwrap().as_usize(), Some(0));
        assert_eq!(slot0.get("shards").unwrap().as_usize(), Some(2));
        assert_eq!(slot0.get("replicas").unwrap().as_usize(), Some(2));
        assert_eq!(slot0.get("fresh_replicas").unwrap().as_usize(), Some(2));
        // Just-announced heartbeats: both ages are ~0 and freshest can
        // never exceed stalest.
        let freshest = slot0.get("freshest_age_secs").unwrap().as_usize().unwrap();
        let stalest = slot0.get("stalest_age_secs").unwrap().as_usize().unwrap();
        assert!(freshest <= stalest && stalest <= 1, "{}", health.body);
        assert_eq!(by_slot[1].get("shard").unwrap().as_usize(), Some(1));
        assert_eq!(by_slot[1].get("replicas").unwrap().as_usize(), Some(1));
    }

    /// A CSV with clear peaks buried among falls, big enough that a
    /// poisoned pruning hint actually bites.
    fn haystack_csv() -> String {
        let mut csv = String::from("z,x,y");
        for series in 0..12 {
            for t in 0..16 {
                let y = if series % 5 == 2 {
                    if t < 8 {
                        t as f64
                    } else {
                        16.0 - t as f64
                    }
                } else {
                    16.0 - t as f64 - 0.05 * series as f64
                };
                csv.push_str(&format!("\ns{series},{t},{y}"));
            }
        }
        csv
    }

    #[test]
    fn poisoned_threshold_hint_is_retried_and_never_drops_results() {
        // Two live shard servers owning partitions 0/2 and 1/2…
        let csv = haystack_csv().replace('\n', "\\n");
        let mut servers = Vec::new();
        for index in 0..2 {
            let server = crate::serve(
                "127.0.0.1:0",
                crate::ServerConfig {
                    workers: 2,
                    ..crate::ServerConfig::default()
                },
            )
            .unwrap();
            let body = format!(
                r#"{{"name":"t","id":"t1","csv":"{csv}","z":"z","x":"x","y":"y","shard_of":"{index}/2"}}"#
            );
            let reply = route(server.state(), &post("/datasets", &body));
            assert_eq!(reply.status, 201, "{}", reply.body);
            servers.push(server);
        }
        // …an all-remote router over them, and an all-local reference.
        let router = state();
        let body = format!(
            r#"{{"name":"t","id":"t1","csv":"{csv}","z":"z","x":"x","y":"y",
                 "shard_endpoints":["{}","{}"]}}"#,
            servers[0].addr(),
            servers[1].addr()
        );
        assert_eq!(route(&router, &post("/datasets", &body)).status, 201);
        let body = format!(
            r#"{{"name":"t","id":"ref","csv":"{csv}","z":"z","x":"x","y":"y","shards":2}}"#
        );
        assert_eq!(route(&router, &post("/datasets", &body)).status, 201);
        let want = route(
            &router,
            &post(
                "/query",
                r#"{"dataset":"ref","query":"[p=up][p=down]","k":2}"#,
            ),
        );
        assert_eq!(want.status, 200, "{}", want.body);
        let want = json::parse(&want.body).unwrap();
        let want = want.get("results").unwrap().to_text();

        // Drive the fan-out directly with a POISONED hint — far above any
        // real score, as a stale or buggy upstream could send. The
        // forwarded hint makes both shard servers prune everything; the
        // verification pass must catch the undischarged pruned_bounds and
        // re-query hint-less, so the final outcomes are still exact.
        let entry = router.catalog.get("t1").unwrap();
        let q = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        let exec = execute_on_shards(
            &router,
            &entry,
            vec![(q, 2)],
            &router.default_options,
            false,
            &[Some(0.999)],
            None,
        );
        let got = exec.outcomes[0].as_ref().unwrap();
        assert_eq!(
            protocol::results_to_json(got).to_text(),
            want,
            "a poisoned threshold_hint must never drop a true top-k result"
        );
        // The retry really happened: each endpoint answered the original
        // (hinted) RPC plus the hint-less retry.
        let stats = router.remote_stats.lock().unwrap();
        for (endpoint, s) in stats.iter() {
            assert!(
                s.requests >= 2,
                "endpoint {endpoint} should have been re-queried (got {} requests)",
                s.requests
            );
            assert_eq!(s.errors, 0, "retries are not transport errors");
        }
        drop(stats);

        // Sanity: the honest path (no hints) does exactly one RPC per
        // endpoint and produces the same answer.
        let got = route(
            &router,
            &post(
                "/query",
                r#"{"dataset":"t1","query":"[p=up][p=down]","k":2}"#,
            ),
        );
        assert_eq!(got.status, 200, "{}", got.body);
        let got = json::parse(&got.body).unwrap();
        assert_eq!(got.get("results").unwrap().to_text(), want);

        for server in servers {
            server.shutdown();
        }
    }

    #[test]
    fn shard_query_reports_hint_debt_for_unverifiable_hints() {
        // A shard server handed a poisoned hint over the wire replies
        // with a deficient partial, but MUST flag it: pruned_bound is
        // reported, and the partial's own k-th (if any) cannot clear it —
        // the caller's hint_undischarged() check always fires.
        let state = state();
        let csv = haystack_csv().replace('\n', "\\n");
        let body = format!(r#"{{"name":"t","id":"t1","csv":"{csv}","z":"z","x":"x","y":"y"}}"#);
        assert_eq!(route(&state, &post("/datasets", &body)).status, 201);

        let q = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        let k = 2;
        let rpc = protocol::shard_request_to_json(
            "t1",
            &[(q.clone(), k)],
            &[Some(0.999)],
            &state.default_options,
            None,
        );
        let reply = route(&state, &post("/shard/query", &rpc.to_text()));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let partials =
            protocol::shard_outcomes_from_json(&json::parse(&reply.body).unwrap(), 1).unwrap();
        let outcome = &partials.outcomes[0];
        let bound = partials.pruned_bounds[0];
        assert!(
            bound.is_some(),
            "hint-justified prunes must be reported: {}",
            reply.body
        );
        assert!(
            hint_undischarged(outcome, k, bound),
            "a deficient partial must fail the discharge check"
        );

        // The same RPC with a null hint is the exact partial, debt-free.
        let rpc = protocol::shard_request_to_json(
            "t1",
            &[(q.clone(), k)],
            &[None],
            &state.default_options,
            None,
        );
        let reply = route(&state, &post("/shard/query", &rpc.to_text()));
        let partials =
            protocol::shard_outcomes_from_json(&json::parse(&reply.body).unwrap(), 1).unwrap();
        assert_eq!(partials.pruned_bounds[0], None);
        assert_eq!(partials.outcomes[0].as_ref().unwrap().len(), k);

        // k = 0 with a hint must neither panic the verification pass nor
        // report anything undischarged (a top-0 has nothing to drop).
        let rpc = protocol::shard_request_to_json(
            "t1",
            &[(q, 0)],
            &[Some(0.999)],
            &state.default_options,
            None,
        );
        let reply = route(&state, &post("/shard/query", &rpc.to_text()));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let partials =
            protocol::shard_outcomes_from_json(&json::parse(&reply.body).unwrap(), 1).unwrap();
        assert!(partials.outcomes[0].as_ref().unwrap().is_empty());
        assert!(!hint_undischarged(
            &partials.outcomes[0],
            0,
            partials.pruned_bounds[0]
        ));
    }

    #[test]
    fn reregistering_with_new_shard_count_recomputes() {
        let state = state();
        register_sharded(&state, "ds", 1);
        let q = r#"{"dataset":"ds","query":"[p=up]","k":1}"#;
        let cold = route(&state, &post("/query", q));
        assert!(cold.body.contains("\"cached\":false"), "{}", cold.body);
        let warm = route(&state, &post("/query", q));
        assert!(warm.body.contains("\"cached\":true"), "{}", warm.body);

        // Same id, new shard count: the cached result must not survive.
        register_sharded(&state, "ds", 2);
        let after = route(&state, &post("/query", q));
        assert!(after.body.contains("\"cached\":false"), "{}", after.body);
        assert!(after.body.contains("\"shards\":2"), "{}", after.body);
        // And the recomputed answer matches the pre-reshard one.
        let before = json::parse(&cold.body).unwrap();
        let after = json::parse(&after.body).unwrap();
        assert_eq!(
            before.get("results").unwrap().to_text(),
            after.get("results").unwrap().to_text()
        );
    }

    /// Writes a v1 snapshot whose trendlines mirror [`CSV`] exactly, so
    /// a snapshot registration and a CSV registration answer from the
    /// same logical collection.
    fn demo_snapshot(dir: &std::path::Path, name: &str) -> std::path::PathBuf {
        use shapesearch_datastore::Trendline;
        let trendlines = vec![
            Trendline::from_pairs("a", &[(1.0, 1.0), (2.0, 3.0), (3.0, 1.0)]),
            Trendline::from_pairs("b", &[(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]),
        ];
        let path = dir.join(name);
        shapesearch_core::snapshot::write(&path, &trendlines, 1).unwrap();
        path
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ss-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn results_of(body: &str) -> String {
        json::parse(body)
            .unwrap()
            .get("results")
            .unwrap_or_else(|| panic!("no results in {body}"))
            .to_text()
    }

    #[test]
    fn snapshot_registration_answers_byte_identical_to_csv() {
        let dir = temp_dir("snap-http");
        let snap = demo_snapshot(&dir, "identity.snap");
        let state = Arc::new(AppState::new(16, 2, Some(dir.clone()), 1));
        register(&state); // "t1", inline CSV, eager
        let body = format!(
            r#"{{"name":"s","id":"s1","snapshot":"{}"}}"#,
            snap.display()
        );
        let resp = route(&state, &post("/datasets", &body));
        assert_eq!(resp.status, 201, "{}", resp.body);
        assert!(resp.body.contains("\"snapshot\":true"), "{}", resp.body);

        for q in ["[p=up][p=down]", "[p=down]", "[p=up]"] {
            let eager = route(
                &state,
                &post(
                    "/query",
                    &format!(r#"{{"dataset":"t1","query":"{q}","k":2}}"#),
                ),
            );
            let lazy = route(
                &state,
                &post(
                    "/query",
                    &format!(r#"{{"dataset":"s1","query":"{q}","k":2}}"#),
                ),
            );
            assert_eq!(eager.status, 200, "{}", eager.body);
            assert_eq!(lazy.status, 200, "{}", lazy.body);
            assert_eq!(results_of(&eager.body), results_of(&lazy.body), "query {q}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_refused_with_structured_error() {
        let dir = temp_dir("snap-corrupt");
        let snap = demo_snapshot(&dir, "torn.snap");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() - 9; // payload byte: header parses, checksum must not
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();

        let state = Arc::new(AppState::new(16, 2, Some(dir.clone()), 1));
        let body = format!(
            r#"{{"name":"s","id":"s1","snapshot":"{}"}}"#,
            snap.display()
        );
        let resp = route(&state, &post("/datasets", &body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(
            resp.body.contains("\"code\":\"snapshot_invalid\""),
            "{}",
            resp.body
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_registration_is_gated_by_data_root() {
        let dir = temp_dir("snap-root");
        let snap = demo_snapshot(&dir, "gated.snap");
        let body = format!(
            r#"{{"name":"s","id":"s1","snapshot":"{}"}}"#,
            snap.display()
        );

        // Without --data-root, snapshot paths are refused like `path`.
        let closed = state();
        let resp = route(&closed, &post("/datasets", &body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("disabled"), "{}", resp.body);

        // A snapshot outside the root is refused even with a root set.
        let elsewhere = temp_dir("snap-elsewhere");
        let outside = demo_snapshot(&elsewhere, "outside.snap");
        let open = Arc::new(AppState::new(16, 2, Some(dir.clone()), 1));
        let body = format!(
            r#"{{"name":"s","id":"s1","snapshot":"{}"}}"#,
            outside.display()
        );
        let resp = route(&open, &post("/datasets", &body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("data root"), "{}", resp.body);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&elsewhere).ok();
    }

    #[test]
    fn snapshot_registration_rejects_extraction_keys() {
        let dir = temp_dir("snap-keys");
        let snap = demo_snapshot(&dir, "keys.snap");
        let state = Arc::new(AppState::new(16, 2, Some(dir.clone()), 1));
        let body = format!(
            r#"{{"name":"s","id":"s1","snapshot":"{}","z":"z","x":"x","y":"y"}}"#,
            snap.display()
        );
        let resp = route(&state, &post("/datasets", &body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(
            resp.body
                .contains("does not apply to a `snapshot` registration"),
            "{}",
            resp.body
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_lru_evicts_and_reloads_identically_under_pressure() {
        let dir = temp_dir("snap-lru");
        let snap = demo_snapshot(&dir, "lru.snap");
        let state = Arc::new(AppState::new(16, 2, Some(dir.clone()), 2));
        state.catalog.set_resident_capacity(1);
        let body = format!(
            r#"{{"name":"s","id":"s1","snapshot":"{}","shards":2}}"#,
            snap.display()
        );
        let resp = route(&state, &post("/datasets", &body));
        assert_eq!(resp.status, 201, "{}", resp.body);
        assert!(resp.body.contains("\"shards\":2"), "{}", resp.body);

        let q = r#"{"dataset":"s1","query":"[p=up][p=down]","k":2}"#;
        let cold = route(&state, &post("/query", q));
        assert_eq!(cold.status, 200, "{}", cold.body);

        // Two shards, one resident slot: the fan-out loaded both and
        // the cap evicted down to one.
        let stats = state.catalog.resident().stats();
        assert_eq!(stats.loads, 2, "{stats:?}");
        assert_eq!(stats.resident, 1, "{stats:?}");
        assert!(stats.evictions >= 1, "{stats:?}");

        // Re-registering the same id purges that generation's residents
        // and invalidates its cache entries; the re-query reloads every
        // shard from disk and still answers byte-identically.
        let resp = route(&state, &post("/datasets", &body));
        assert_eq!(resp.status, 201, "{}", resp.body);
        let warm = route(&state, &post("/query", q));
        assert_eq!(warm.status, 200, "{}", warm.body);
        assert!(warm.body.contains("\"cached\":false"), "{}", warm.body);
        assert_eq!(results_of(&cold.body), results_of(&warm.body));
        let stats = state.catalog.resident().stats();
        assert_eq!(stats.loads, 4, "{stats:?}");
        assert_eq!(stats.resident, 1, "{stats:?}");

        // The healthz snapshot block reports the same counters.
        let health = route(&state, &get("/healthz"));
        assert!(health.body.contains("\"snapshots\":{"), "{}", health.body);
        assert!(health.body.contains("\"capacity\":1"), "{}", health.body);
        std::fs::remove_dir_all(&dir).ok();
    }
}
