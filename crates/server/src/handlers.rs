//! Route handlers tying the catalog, the query cache, and the engine
//! together behind the JSON protocol.

use crate::cache::{CacheKey, QueryCache};
use crate::catalog::{Catalog, DataSource};
use crate::error::ServerError;
use crate::http::{Request, Response};
use crate::json::{self, obj, Json};
use crate::protocol;
use shapesearch_core::EngineOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared application state, one per server.
pub struct AppState {
    pub catalog: Catalog,
    pub cache: QueryCache,
    /// Total `POST /query` requests (hit or miss).
    pub queries: AtomicU64,
    /// Per-dataset engine defaults; requests may override per call.
    pub default_options: EngineOptions,
    /// Worker-pool size, echoed in `/healthz`.
    pub workers: usize,
    /// Directory that `POST /datasets` `path` sources must live under.
    /// `None` (the default) disables path registration over HTTP
    /// entirely — otherwise any network client could read arbitrary
    /// server-local files. In-process registration (CLI preload) is
    /// unrestricted.
    pub data_root: Option<PathBuf>,
}

impl AppState {
    pub fn new(cache_capacity: usize, workers: usize, data_root: Option<PathBuf>) -> Self {
        Self {
            catalog: Catalog::new(),
            cache: QueryCache::new(cache_capacity),
            queries: AtomicU64::new(0),
            default_options: EngineOptions::default(),
            workers,
            data_root,
        }
    }
}

/// Validates an HTTP-supplied `path` source against the configured data
/// root. Canonicalizes both sides so `..` hops and symlinks can't
/// escape the sandbox, and returns the canonicalized path — the caller
/// must load *that*, not the client's original string, or a symlink
/// swapped in between check and open would re-escape (TOCTOU).
fn check_path_source(path: &str, data_root: Option<&Path>) -> Result<PathBuf, ServerError> {
    let Some(root) = data_root else {
        return Err(ServerError::bad_request(
            "`path` registration over HTTP is disabled; start the server with \
             --data-root, or send the data inline via `csv`/`jsonl`",
        ));
    };
    let root = root
        .canonicalize()
        .map_err(|e| ServerError::internal(format!("data root unusable: {e}")))?;
    let resolved = Path::new(path)
        .canonicalize()
        .map_err(|e| ServerError::bad_request(format!("loading dataset: {e}")))?;
    if !resolved.starts_with(&root) {
        return Err(ServerError::bad_request(format!(
            "`path` must be under the data root {}",
            root.display()
        )));
    }
    Ok(resolved)
}

fn ok(body: Json) -> Response {
    Response::json(200, body.to_text())
}

fn fail(err: &ServerError) -> Response {
    Response::json(err.status, protocol::error_to_json(err).to_text())
}

/// Dispatches one request. Unknown routes get 404, wrong methods 405.
/// Query strings are ignored for routing (`/healthz?verbose=1` is
/// `/healthz`).
pub fn route(state: &Arc<AppState>, request: &Request) -> Response {
    let path = request.path.split('?').next().unwrap_or("");
    let result = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok(healthz(state)),
        ("GET", "/datasets") => Ok(list_datasets(state)),
        ("POST", "/datasets") => register_dataset(state, request),
        ("POST", "/query") => query(state, request),
        (_, "/healthz" | "/datasets" | "/query") => Err(ServerError {
            status: 405,
            message: format!("method {} not allowed here", request.method),
        }),
        _ => Err(ServerError::not_found(format!(
            "no route {} {}",
            request.method, request.path
        ))),
    };
    result.unwrap_or_else(|e| fail(&e))
}

fn body_json(request: &Request) -> Result<Json, ServerError> {
    let text = request
        .body_text()
        .map_err(|_| ServerError::bad_request("body is not utf-8"))?;
    json::parse(text).map_err(|e| ServerError::bad_request(format!("invalid JSON body: {e}")))
}

fn healthz(state: &Arc<AppState>) -> Response {
    let stats = state.cache.stats();
    ok(obj([
        ("status", "ok".into()),
        ("datasets", state.catalog.len().into()),
        ("queries", state.queries.load(Ordering::Relaxed).into()),
        ("workers", state.workers.into()),
        (
            "cache",
            obj([
                ("hits", stats.hits.into()),
                ("misses", stats.misses.into()),
                ("entries", stats.entries.into()),
                ("capacity", stats.capacity.into()),
            ]),
        ),
    ]))
}

fn list_datasets(state: &Arc<AppState>) -> Response {
    let datasets: Vec<Json> = state
        .catalog
        .list()
        .iter()
        .map(|e| protocol::dataset_to_json(e))
        .collect();
    ok(obj([("datasets", Json::Arr(datasets))]))
}

fn register_dataset(state: &Arc<AppState>, request: &Request) -> Result<Response, ServerError> {
    let body = body_json(request)?;
    let mut spec = protocol::dataset_spec_from_json(&body)?;
    if let DataSource::Path(path) = &mut spec.source {
        let resolved = check_path_source(path, state.data_root.as_deref())?;
        *path = resolved.to_string_lossy().into_owned();
    }
    let entry = state.catalog.register(spec)?;
    // Replacing a dataset id must not serve the old dataset's results.
    state.cache.invalidate_dataset(&entry.id);
    Ok(Response::json(
        201,
        protocol::dataset_to_json(&entry).to_text(),
    ))
}

fn query(state: &Arc<AppState>, request: &Request) -> Result<Response, ServerError> {
    let body = body_json(request)?;
    let req = protocol::query_request_from_json(&body)?;
    state.queries.fetch_add(1, Ordering::Relaxed);

    let entry = state
        .catalog
        .get(&req.dataset)
        .ok_or_else(|| ServerError::not_found(format!("unknown dataset `{}`", req.dataset)))?;
    let (query_ast, notes) = protocol::parse_query(&req)?;
    let options = req.effective_options(&state.default_options);
    let key = CacheKey::new(&entry.id, entry.generation, &query_ast, req.k, &options);

    let started = Instant::now();
    let (results, cached) = match state.cache.get(&key) {
        Some(hit) => (hit, true),
        None => {
            let computed = entry
                .engine
                .top_k_with_options(&query_ast, req.k, &options)
                .map_err(|e| ServerError::bad_request(format!("query failed: {e}")))?;
            let computed = Arc::new(computed);
            state.cache.insert(key, Arc::clone(&computed));
            (computed, false)
        }
    };
    let micros = started.elapsed().as_micros() as u64;

    let mut fields = vec![
        ("dataset", Json::Str(entry.id.clone())),
        ("query", Json::Str(query_ast.to_string())),
        ("k", req.k.into()),
        ("algo", options.segmenter.name().into()),
        ("cached", cached.into()),
        ("micros", micros.into()),
        ("results", protocol::results_to_json(&results)),
    ];
    if !notes.is_empty() {
        fields.push((
            "notes",
            Json::Arr(notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ));
    }
    Ok(ok(obj(fields)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "z,x,y\\na,1,1\\na,2,3\\na,3,1\\nb,1,3\\nb,2,2\\nb,3,1\\n";

    fn state() -> Arc<AppState> {
        Arc::new(AppState::new(16, 2, None))
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn register(state: &Arc<AppState>) {
        let body = format!(r#"{{"name":"t","id":"t1","csv":"{CSV}","z":"z","x":"x","y":"y"}}"#);
        let resp = route(state, &post("/datasets", &body));
        assert_eq!(resp.status, 201, "{}", resp.body);
    }

    #[test]
    fn full_route_cycle() {
        let state = state();
        register(&state);

        let listing = route(&state, &get("/datasets"));
        assert_eq!(listing.status, 200);
        assert!(listing.body.contains("\"id\":\"t1\""), "{}", listing.body);

        let q = r#"{"dataset":"t1","query":"[p=up][p=down]","k":1}"#;
        let first = route(&state, &post("/query", q));
        assert_eq!(first.status, 200, "{}", first.body);
        assert!(first.body.contains("\"cached\":false"), "{}", first.body);
        assert!(first.body.contains("\"key\":\"a\""), "{}", first.body);

        let second = route(&state, &post("/query", q));
        assert!(second.body.contains("\"cached\":true"), "{}", second.body);

        let health = route(&state, &get("/healthz"));
        assert!(health.body.contains("\"hits\":1"), "{}", health.body);
        assert!(health.body.contains("\"misses\":1"), "{}", health.body);
        assert!(health.body.contains("\"queries\":2"), "{}", health.body);
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let state = state();
        let resp = route(&state, &get("/healthz?verbose=1"));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"status\":\"ok\""));
    }

    #[test]
    fn path_registration_is_gated_by_data_root() {
        let dir = std::env::temp_dir().join(format!("ss-data-root-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inside = dir.join("ok.csv");
        std::fs::write(&inside, "z,x,y\na,1,1\na,2,2\n").unwrap();
        let body = |path: &std::path::Path| {
            format!(
                r#"{{"name":"p","id":"p1","path":"{}","z":"z","x":"x","y":"y"}}"#,
                path.display()
            )
        };

        // Without a data root, HTTP path registration is refused.
        let closed = state();
        let resp = route(&closed, &post("/datasets", &body(&inside)));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("disabled"), "{}", resp.body);

        // With a data root: inside is allowed, escapes are not.
        let open = Arc::new(AppState::new(16, 2, Some(dir.clone())));
        let resp = route(&open, &post("/datasets", &body(&inside)));
        assert_eq!(resp.status, 201, "{}", resp.body);
        let escape = dir.join("..").join("outside.csv");
        std::fs::write(dir.parent().unwrap().join("outside.csv"), "z,x,y\na,1,1\n").unwrap();
        let resp = route(&open, &post("/datasets", &body(&escape)));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("data root"), "{}", resp.body);

        std::fs::remove_file(dir.parent().unwrap().join("outside.csv")).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_inflight_insert_cannot_poison_new_generation() {
        let state = state();
        register(&state);
        let old = state.catalog.get("t1").unwrap();
        let q = shapesearch_parser::parse_regex("[p=up]").unwrap();
        let old_key = CacheKey::new(&old.id, old.generation, &q, 1, &state.default_options);
        // Re-register (bumps the generation), then emulate a slow
        // in-flight query against the OLD engine finishing late and
        // inserting its stale results.
        register(&state);
        state.cache.insert(old_key, Arc::new(Vec::new()));
        // A fresh query keys on the new generation: it must recompute,
        // not hit the stale entry.
        let resp = route(
            &state,
            &post("/query", r#"{"dataset":"t1","query":"[p=up]","k":1}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"cached\":false"), "{}", resp.body);
        assert!(resp.body.contains("\"results\":[{"), "{}", resp.body);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let state = state();
        assert_eq!(route(&state, &get("/nope")).status, 404);
        assert_eq!(route(&state, &get("/query")).status, 405);
        assert_eq!(route(&state, &post("/healthz", "")).status, 405);
    }

    #[test]
    fn bad_query_bodies_are_400() {
        let state = state();
        register(&state);
        for body in [
            "not json",
            r#"{"dataset":"t1"}"#,
            r#"{"dataset":"t1","query":"[p=bogus...""#,
            r#"{"dataset":"t1","query":"[p=up]","algo":"warp"}"#,
        ] {
            let resp = route(&state, &post("/query", body));
            assert_eq!(resp.status, 400, "body `{body}` → {}", resp.body);
        }
        let resp = route(
            &state,
            &post("/query", r#"{"dataset":"missing","query":"[p=up]"}"#),
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn reregistering_dataset_invalidates_cache() {
        let state = state();
        register(&state);
        let q = r#"{"dataset":"t1","query":"[p=up]","k":1}"#;
        route(&state, &post("/query", q));
        assert_eq!(state.cache.stats().entries, 1);
        register(&state);
        assert_eq!(state.cache.stats().entries, 0);
    }

    #[test]
    fn nl_query_round_trips() {
        let state = state();
        register(&state);
        let q = r#"{"dataset":"t1","nl":"rising then falling","k":1}"#;
        let resp = route(&state, &post("/query", q));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"results\""), "{}", resp.body);
    }
}
