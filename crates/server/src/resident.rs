//! The resident-shard LRU for snapshot-backed datasets: shards load
//! lazily on first touch (mapped partition → engine) and evict under
//! capacity pressure, so a server can register snapshots whose total
//! working set exceeds RAM and pay memory only for the partitions
//! queries actually hit.
//!
//! Loads are **singleflight**: concurrent queries racing a cold shard
//! block on one loader instead of duplicating the (CPU- and
//! memory-expensive) materialization — the same coalescing discipline
//! the query cache applies to identical queries. Keys are
//! `(generation, shard slot)`, so a re-registered dataset can never be
//! served a predecessor's partitions; the catalog purges the stale
//! generation's residents on replacement.

use crate::error::ServerError;
use shapesearch_core::ShapeEngine;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A point-in-time snapshot of the LRU's `/healthz` gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidentStats {
    /// Shards currently resident (loaded and not evicted).
    pub resident: usize,
    /// Configured capacity (0 = unlimited).
    pub capacity: usize,
    /// Total columnar-arena bytes held by the resident shards.
    pub resident_bytes: u64,
    /// Configured byte budget (0 = unlimited).
    pub capacity_bytes: u64,
    /// Cold loads performed over the process lifetime.
    pub loads: u64,
    /// Shards evicted under capacity pressure.
    pub evictions: u64,
    /// Total microseconds spent in cold shard loads.
    pub load_micros_total: u64,
}

/// One shard slot's residency state.
enum Slot {
    /// Some thread is materializing the shard; waiters block on the
    /// condvar until it publishes (or fails and vacates the slot).
    Loading,
    /// The shard is resident. `touched` is the LRU clock tick of its
    /// last use; `bytes` is its columnar-arena footprint, measured once
    /// at publish time (resident engines are immutable).
    Ready {
        engine: Arc<ShapeEngine>,
        touched: u64,
        bytes: u64,
    },
}

struct Inner {
    /// Monotone use counter; bigger = more recently used.
    clock: u64,
    /// `(generation, shard slot)` → residency state.
    slots: HashMap<(u64, usize), Slot>,
}

/// The shared resident-shard LRU; one per catalog.
pub struct ResidentShards {
    /// Max resident shards across all snapshot datasets (0 = unlimited).
    capacity: AtomicUsize,
    /// Byte budget across all resident shards' columnar arenas
    /// (0 = unlimited). Eviction never goes below one resident shard,
    /// so a single shard bigger than the budget still serves.
    capacity_bytes: AtomicU64,
    inner: Mutex<Inner>,
    loaded: Condvar,
    loads: AtomicU64,
    evictions: AtomicU64,
    load_micros: AtomicU64,
}

impl Default for ResidentShards {
    fn default() -> Self {
        Self::new(0)
    }
}

impl ResidentShards {
    /// An empty LRU holding at most `capacity` resident shards
    /// (0 = unlimited).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: AtomicUsize::new(capacity),
            capacity_bytes: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                clock: 0,
                slots: HashMap::new(),
            }),
            loaded: Condvar::new(),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            load_micros: AtomicU64::new(0),
        }
    }

    /// Reconfigures the capacity (0 = unlimited). Takes effect on the
    /// next load; already-resident shards are not proactively evicted.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// Reconfigures the byte budget (0 = unlimited). Takes effect on the
    /// next load; already-resident shards are not proactively evicted.
    pub fn set_capacity_bytes(&self, capacity_bytes: u64) {
        self.capacity_bytes.store(capacity_bytes, Ordering::Relaxed);
    }

    /// A consistent snapshot of the gauges.
    pub fn stats(&self) -> ResidentStats {
        let inner = self.inner.lock().expect("resident lock");
        ResidentStats {
            resident: inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count(),
            capacity: self.capacity.load(Ordering::Relaxed),
            resident_bytes: inner
                .slots
                .values()
                .map(|s| match s {
                    Slot::Ready { bytes, .. } => *bytes,
                    Slot::Loading => 0,
                })
                .sum(),
            capacity_bytes: self.capacity_bytes.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            load_micros_total: self.load_micros.load(Ordering::Relaxed),
        }
    }

    /// Drops every resident shard of `generation` — called when a
    /// dataset re-registration replaces that generation, whose
    /// partitions must never be served again. In-flight loads of the
    /// stale generation are left to complete (their result is simply
    /// never touched again and ages out of the LRU).
    pub fn purge_generation(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("resident lock");
        inner
            .slots
            .retain(|(gen, _), slot| *gen != generation || matches!(slot, Slot::Loading));
    }

    /// The shard for `key`, touching it in the LRU — loading it via
    /// `load` first if it is not resident. Exactly one caller runs the
    /// loader per cold slot; the rest block until it publishes. A failed
    /// load returns its error to the loader only and vacates the slot —
    /// a blocked waiter wakes, finds the slot empty, and becomes the
    /// next loader rather than inheriting a failure it can retry.
    ///
    /// # Errors
    /// Whatever `load` returns; the LRU adds nothing.
    pub fn get_or_load(
        &self,
        key: (u64, usize),
        load: impl FnOnce() -> Result<Arc<ShapeEngine>, ServerError>,
    ) -> Result<Arc<ShapeEngine>, ServerError> {
        let mut inner = self.inner.lock().expect("resident lock");
        loop {
            match inner.slots.get(&key) {
                Some(Slot::Ready { .. }) => {
                    inner.clock += 1;
                    let clock = inner.clock;
                    let Some(Slot::Ready {
                        engine, touched, ..
                    }) = inner.slots.get_mut(&key)
                    else {
                        unreachable!("checked above under the same lock hold");
                    };
                    *touched = clock;
                    return Ok(Arc::clone(engine));
                }
                Some(Slot::Loading) => {
                    inner = self.loaded.wait(inner).expect("resident lock");
                }
                None => {
                    inner.slots.insert(key, Slot::Loading);
                    break;
                }
            }
        }
        drop(inner);

        // The expensive part runs outside the lock: other slots stay
        // servable while this one materializes.
        let started = Instant::now();
        let outcome = load();
        let micros = started.elapsed().as_micros() as u64;

        let mut inner = self.inner.lock().expect("resident lock");
        match outcome {
            Ok(engine) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                self.load_micros.fetch_add(micros, Ordering::Relaxed);
                inner.clock += 1;
                let touched = inner.clock;
                // Measured once here: resident engines are immutable, and
                // snapshot loads pre-seed the grouped arena, so this is
                // the shard's steady-state footprint.
                let bytes = engine.grouped_byte_size() as u64;
                inner.slots.insert(
                    key,
                    Slot::Ready {
                        engine: Arc::clone(&engine),
                        touched,
                        bytes,
                    },
                );
                self.evict_over_capacity(&mut inner);
                self.loaded.notify_all();
                Ok(engine)
            }
            Err(e) => {
                // Vacate so a later (or waiting) caller can retry the
                // load instead of inheriting this failure forever.
                inner.slots.remove(&key);
                self.loaded.notify_all();
                Err(e)
            }
        }
    }

    /// Evicts least-recently-touched **ready** shards until the resident
    /// count fits the capacity AND the resident byte sum fits the byte
    /// budget. `Loading` slots are never evicted (their loader holds no
    /// LRU position yet, and evicting one would strand its waiters). The
    /// byte budget never evicts below one resident shard: a single shard
    /// bigger than the whole budget must still serve.
    fn evict_over_capacity(&self, inner: &mut Inner) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        let capacity_bytes = self.capacity_bytes.load(Ordering::Relaxed);
        if capacity == 0 && capacity_bytes == 0 {
            return;
        }
        loop {
            let ready = inner
                .slots
                .iter()
                .filter_map(|(key, slot)| match slot {
                    Slot::Ready { touched, bytes, .. } => Some((*touched, *key, *bytes)),
                    Slot::Loading => None,
                })
                .collect::<Vec<_>>();
            let total_bytes: u64 = ready.iter().map(|(_, _, bytes)| bytes).sum();
            let over_count = capacity != 0 && ready.len() > capacity;
            let over_bytes = capacity_bytes != 0 && total_bytes > capacity_bytes && ready.len() > 1;
            if !over_count && !over_bytes {
                return;
            }
            let (_, coldest, _) = ready
                .into_iter()
                .min()
                .expect("non-empty: an over-budget set has at least one shard");
            inner.slots.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapesearch_datastore::Trendline;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn demo_engine(slot: usize) -> Arc<ShapeEngine> {
        let t = Trendline::from_pairs(
            format!("s{slot}"),
            &[(0.0, 0.0), (1.0, slot as f64 + 1.0), (2.0, 0.0)],
        );
        Arc::new(ShapeEngine::from_trendlines(vec![t]).with_base_index(slot))
    }

    /// A loader that counts its invocations.
    fn counting_loader(
        counter: &Arc<AtomicUsize>,
        slot: usize,
    ) -> impl FnOnce() -> Result<Arc<ShapeEngine>, ServerError> {
        let counter = Arc::clone(counter);
        move || {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(demo_engine(slot))
        }
    }

    #[test]
    fn loads_once_then_serves_resident() {
        let lru = ResidentShards::new(0);
        let loads = Arc::new(AtomicUsize::new(0));
        let a = lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        let b = lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second touch must reuse the resident");
        assert_eq!(loads.load(Ordering::SeqCst), 1);
        let stats = lru.stats();
        assert_eq!(stats.resident, 1);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn evicts_least_recently_touched_first() {
        let lru = ResidentShards::new(2);
        let loads = Arc::new(AtomicUsize::new(0));
        lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        lru.get_or_load((1, 1), counting_loader(&loads, 1)).unwrap();
        // Touch 0 so 1 is now the coldest…
        lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        // …and loading 2 must evict 1, not 0.
        lru.get_or_load((1, 2), counting_loader(&loads, 2)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 3);
        let stats = lru.stats();
        assert_eq!((stats.resident, stats.evictions), (2, 1));
        // 0 and 2 are warm (no new load); 1 is cold (one new load).
        lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        lru.get_or_load((1, 2), counting_loader(&loads, 2)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 3);
        lru.get_or_load((1, 1), counting_loader(&loads, 1)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn reload_after_eviction_answers_identically() {
        let q = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
        let lru = ResidentShards::new(1);
        let first = lru.get_or_load((7, 3), || Ok(demo_engine(3))).unwrap();
        let want = first.top_k(&q, 1).unwrap();
        // Push it out, then reload the same deterministic partition.
        lru.get_or_load((7, 4), || Ok(demo_engine(4))).unwrap();
        assert_eq!(lru.stats().evictions, 1);
        let again = lru.get_or_load((7, 3), || Ok(demo_engine(3))).unwrap();
        assert!(!Arc::ptr_eq(&first, &again), "must be a fresh load");
        let got = again.top_k(&q, 1).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.key, w.key);
            assert_eq!(g.viz_index, w.viz_index);
            assert_eq!(g.score.to_bits(), w.score.to_bits());
            assert_eq!(g.ranges, w.ranges);
        }
    }

    #[test]
    fn concurrent_cold_touch_loads_exactly_once() {
        const THREADS: usize = 8;
        let lru = Arc::new(ResidentShards::new(1));
        let loads = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(THREADS));
        let engines: Vec<Arc<ShapeEngine>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let lru = Arc::clone(&lru);
                    let loads = Arc::clone(&loads);
                    let gate = Arc::clone(&gate);
                    scope.spawn(move || {
                        gate.wait();
                        lru.get_or_load((1, 0), move || {
                            loads.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window: waiters must block,
                            // not spawn their own loads.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(demo_engine(0))
                        })
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(loads.load(Ordering::SeqCst), 1, "singleflight violated");
        for e in &engines[1..] {
            assert!(Arc::ptr_eq(&engines[0], e));
        }
        assert_eq!(lru.stats().loads, 1);
    }

    #[test]
    fn failed_load_vacates_the_slot_for_retry() {
        let lru = ResidentShards::new(0);
        let err = lru
            .get_or_load((1, 0), || Err(ServerError::internal("disk on fire")))
            .unwrap_err();
        assert_eq!(err.status, 500);
        assert_eq!(lru.stats().loads, 0);
        // The failure did not wedge the slot: the next touch loads.
        let loads = Arc::new(AtomicUsize::new(0));
        lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn byte_budget_evicts_coldest_but_never_the_last_resident() {
        // Warmed engines, like the snapshot load path produces: the byte
        // budget measures the grouped arena, which a cold engine lacks.
        fn warmed_engine(slot: usize) -> Arc<ShapeEngine> {
            let engine = demo_engine(slot);
            engine.warm(1);
            engine
        }
        let lru = ResidentShards::new(0);
        lru.get_or_load((1, 0), || Ok(warmed_engine(0))).unwrap();
        let per_shard = lru.stats().resident_bytes;
        assert!(per_shard > 0, "demo engine must have a measurable arena");
        // Budget for exactly two shards: the third load evicts the coldest.
        lru.set_capacity_bytes(per_shard * 2);
        lru.get_or_load((1, 1), || Ok(warmed_engine(1))).unwrap();
        assert_eq!(lru.stats().evictions, 0);
        // Touch 0 so 1 is the coldest…
        lru.get_or_load((1, 0), || Ok(warmed_engine(0))).unwrap();
        lru.get_or_load((1, 2), || Ok(warmed_engine(2))).unwrap();
        let stats = lru.stats();
        assert_eq!((stats.resident, stats.evictions), (2, 1));
        assert!(stats.resident_bytes <= stats.capacity_bytes);
        // …so 0 stays warm and 1 went cold.
        let loads = Arc::new(AtomicUsize::new(0));
        lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 0);
        lru.get_or_load((1, 1), counting_loader(&loads, 1)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 1);
        // A budget smaller than any single shard keeps exactly one
        // resident rather than thrashing to zero.
        lru.set_capacity_bytes(1);
        lru.get_or_load((1, 3), || Ok(warmed_engine(3))).unwrap();
        let stats = lru.stats();
        assert_eq!(stats.resident, 1);
        assert!(stats.resident_bytes > stats.capacity_bytes);
    }

    #[test]
    fn purge_generation_drops_only_that_generation() {
        let lru = ResidentShards::new(0);
        lru.get_or_load((1, 0), || Ok(demo_engine(0))).unwrap();
        lru.get_or_load((2, 0), || Ok(demo_engine(0))).unwrap();
        assert_eq!(lru.stats().resident, 2);
        lru.purge_generation(1);
        assert_eq!(lru.stats().resident, 1);
        // Generation 2 stays warm; generation 1 reloads cold.
        let loads = Arc::new(AtomicUsize::new(0));
        lru.get_or_load((2, 0), counting_loader(&loads, 0)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 0);
        lru.get_or_load((1, 0), counting_loader(&loads, 0)).unwrap();
        assert_eq!(loads.load(Ordering::SeqCst), 1);
    }
}
