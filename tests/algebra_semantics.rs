//! Semantic laws of the ShapeQuery algebra, checked through the engine on
//! concrete data: operator identities (Table 6), modifier behaviours,
//! nesting, and the CONCAT weighting of nested averages.

use shapesearch_core::algo::dp::DpSegmenter;
use shapesearch_core::chain::expand_chains;
use shapesearch_core::{
    Evaluator, Modifier, Pattern, ScoreParams, Segmenter, ShapeQuery, ShapeSegment, UdpRegistry,
    VizData,
};
use shapesearch_datastore::Trendline;

fn viz(ys: &[f64]) -> VizData {
    let pairs: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
    VizData::from_trendline(&Trendline::from_pairs("t", pairs.as_slice()), 0, 1).unwrap()
}

fn eval_full(q: &ShapeQuery, v: &VizData) -> f64 {
    let params = ScoreParams::default();
    let udps = UdpRegistry::new();
    let ev = Evaluator::new(v, &params, &udps);
    ev.eval_node(q, 0, v.n() - 1, None)
}

fn dp_score(q: &ShapeQuery, v: &VizData) -> f64 {
    let params = ScoreParams::default();
    let udps = UdpRegistry::new();
    let ev = Evaluator::new(v, &params, &udps);
    DpSegmenter.match_viz(&ev, &expand_chains(q)).score
}

fn zigzag() -> VizData {
    viz(&[0.0, 2.0, 1.0, 3.0, 2.5, 4.0, 1.0, 0.5])
}

#[test]
fn double_negation_is_identity() {
    let v = zigzag();
    let q = ShapeQuery::up();
    let nn = ShapeQuery::Not(Box::new(ShapeQuery::Not(Box::new(ShapeQuery::up()))));
    assert!((eval_full(&q, &v) - eval_full(&nn, &v)).abs() < 1e-12);
}

#[test]
fn not_up_equals_down() {
    // Table 5: down(slope) = −up(slope), so !up ≡ down pointwise.
    let v = zigzag();
    let not_up = ShapeQuery::Not(Box::new(ShapeQuery::up()));
    assert!((eval_full(&not_up, &v) - eval_full(&ShapeQuery::down(), &v)).abs() < 1e-12);
}

#[test]
fn or_commutative_and_commutative() {
    let v = zigzag();
    let a = ShapeQuery::up();
    let b = ShapeQuery::flat();
    let or1 = ShapeQuery::Or(vec![a.clone(), b.clone()]);
    let or2 = ShapeQuery::Or(vec![b.clone(), a.clone()]);
    assert_eq!(eval_full(&or1, &v), eval_full(&or2, &v));
    let and1 = ShapeQuery::And(vec![a.clone(), b.clone()]);
    let and2 = ShapeQuery::And(vec![b, a]);
    assert_eq!(eval_full(&and1, &v), eval_full(&and2, &v));
}

#[test]
fn or_dominates_and() {
    // max(a, b) ≥ min(a, b) always.
    let v = zigzag();
    for (a, b) in [
        (ShapeQuery::up(), ShapeQuery::down()),
        (ShapeQuery::flat(), ShapeQuery::up()),
        (
            ShapeQuery::pattern(Pattern::Slope(20.0)),
            ShapeQuery::down(),
        ),
    ] {
        let or = eval_full(&ShapeQuery::Or(vec![a.clone(), b.clone()]), &v);
        let and = eval_full(&ShapeQuery::And(vec![a, b]), &v);
        assert!(or >= and);
    }
}

#[test]
fn de_morgan_holds_for_min_max() {
    // !(a ⊕ b) = !a ⊙ !b under max/min/negation semantics.
    let v = zigzag();
    let a = ShapeQuery::up();
    let b = ShapeQuery::flat();
    let lhs = ShapeQuery::Not(Box::new(ShapeQuery::Or(vec![a.clone(), b.clone()])));
    let rhs = ShapeQuery::And(vec![
        ShapeQuery::Not(Box::new(a)),
        ShapeQuery::Not(Box::new(b)),
    ]);
    assert!((eval_full(&lhs, &v) - eval_full(&rhs, &v)).abs() < 1e-12);
}

#[test]
fn any_is_or_identity_and_upper_bound() {
    let v = zigzag();
    let any = ShapeQuery::pattern(Pattern::Any);
    assert_eq!(eval_full(&any, &v), 1.0);
    // OR with Any is always 1 (Any absorbs).
    let or = ShapeQuery::Or(vec![ShapeQuery::down(), any]);
    assert_eq!(eval_full(&or, &v), 1.0);
}

#[test]
fn nested_average_weights_match_manual_evaluation() {
    // a ⊗ (b ⊗ c) = weighted sum [a:1/2, b:1/4, c:1/4], not a flat third.
    let v = viz(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0]);
    let nested = ShapeQuery::Concat(vec![
        ShapeQuery::up(),
        ShapeQuery::Concat(vec![ShapeQuery::down(), ShapeQuery::flat()]),
    ]);
    let flat3 = ShapeQuery::concat(vec![
        ShapeQuery::up(),
        ShapeQuery::down(),
        ShapeQuery::flat(),
    ]);
    let s_nested = dp_score(&nested, &v);
    let s_flat = dp_score(&flat3, &v);
    // Both find good matches but weight them differently; the nested one
    // puts half the weight on the first rise.
    assert!(s_nested > 0.0 && s_flat > 0.0);
    assert!((s_nested - s_flat).abs() > 1e-6, "weights should differ");
}

#[test]
fn quantifier_bounds_ordering() {
    // at-least-1 ≥ exactly-2 can differ, but all stay in bounds and
    // at-least-k is monotone decreasing in k (harder constraints can only
    // lower or equal the count-feasibility).
    let v = viz(&[0.0, 3.0, 0.5, 3.5, 0.2, 3.8, 0.0]);
    let seg =
        |m: Modifier| ShapeQuery::Segment(ShapeSegment::pattern(Pattern::Up).with_modifier(m));
    let s1 = eval_full(&seg(Modifier::at_least(1)), &v);
    let s3 = eval_full(&seg(Modifier::at_least(3)), &v);
    let s5 = eval_full(&seg(Modifier::at_least(5)), &v);
    assert!(s1 > 0.0, "three rises satisfy ≥1: {s1}");
    assert!(s3 > 0.0, "three rises satisfy ≥3: {s3}");
    assert_eq!(s5, -1.0, "only three rises exist");
}

#[test]
fn sharp_modifier_discriminates_steepness_per_segment() {
    // On the same visualization, the sharp modifier scores the steep jump
    // segment far above the diluted whole-range fit, and above what the
    // same segments get on a uniform diagonal.
    let steep = viz(&[0.0, 0.0, 0.0, 10.0, 10.0, 10.0]);
    let shallow = viz(&[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    let params = ScoreParams::default();
    let udps = UdpRegistry::new();
    let sharp = ShapeSegment::pattern(Pattern::Up).with_modifier(Modifier::MuchMore);

    let ev_steep = Evaluator::new(&steep, &params, &udps);
    let jump = ev_steep.eval_segment(&sharp, 2, 3, None);
    let whole = ev_steep.eval_segment(&sharp, 0, 5, None);
    assert!(jump > whole, "jump {jump} <= whole {whole}");

    let ev_shallow = Evaluator::new(&shallow, &params, &udps);
    let diag = ev_shallow.eval_segment(&sharp, 0, 5, None);
    assert!(jump > diag + 0.2, "jump {jump} vs diagonal {diag}");
}

#[test]
fn slope_pattern_peaks_at_matching_angle() {
    // 45° on the canvas = the full diagonal.
    let diagonal = viz(&[0.0, 1.0, 2.0, 3.0, 4.0]);
    let s45 = dp_score(&ShapeQuery::pattern(Pattern::Slope(45.0)), &diagonal);
    let s80 = dp_score(&ShapeQuery::pattern(Pattern::Slope(80.0)), &diagonal);
    let s10 = dp_score(&ShapeQuery::pattern(Pattern::Slope(10.0)), &diagonal);
    assert!(s45 > s80 && s45 > s10);
    assert!((s45 - 1.0).abs() < 1e-9);
}

#[test]
fn udp_builtins_compose_with_operators() {
    let mut reg = UdpRegistry::with_builtins();
    // A custom pattern alongside builtins.
    reg.register(
        "positive_mean",
        std::sync::Arc::new(|ys: &[f64]| {
            let m = ys.iter().sum::<f64>() / ys.len() as f64;
            (4.0 * m - 1.0).clamp(-1.0, 1.0)
        }),
    );
    let params = ScoreParams::default();
    let convex = viz(&[4.0, 1.0, 0.0, 1.0, 4.0]);
    let ev = Evaluator::new(&convex, &params, &reg);
    let q = ShapeQuery::And(vec![
        ShapeQuery::pattern(Pattern::Udp("convex".into())),
        ShapeQuery::pattern(Pattern::Udp("positive_mean".into())),
    ]);
    let s = ev.eval_node(&q, 0, convex.n() - 1, None);
    assert!(s > 0.0, "convex ∧ positive_mean on a parabola: {s}");
}

#[test]
fn concat_weight_normalization_keeps_scores_bounded() {
    // Deeply nested concats still yield a weighted average in [−1, 1].
    let v = zigzag();
    let deep = ShapeQuery::Concat(vec![
        ShapeQuery::up(),
        ShapeQuery::Concat(vec![
            ShapeQuery::down(),
            ShapeQuery::Concat(vec![ShapeQuery::up(), ShapeQuery::down()]),
        ]),
    ]);
    let s = dp_score(&deep, &v);
    assert!((-1.0..=1.0).contains(&s));
    let chains = expand_chains(&deep);
    let total: f64 = chains[0].units.iter().map(|u| u.weight).sum();
    assert!((total - 1.0).abs() < 1e-12);
}
