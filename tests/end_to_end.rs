//! End-to-end integration tests: CSV/JSON → EXTRACT → parse (NL/regex) →
//! engine → top-k, spanning every crate in the workspace.

use shapesearch::prelude::*;
use shapesearch_core::SegmenterKind;

fn sales_csv() -> &'static str {
    "\
product,week,sales
peak_a,1,10\npeak_a,2,25\npeak_a,3,45\npeak_a,4,30\npeak_a,5,12
peak_b,1,5\npeak_b,2,18\npeak_b,3,40\npeak_b,4,22\npeak_b,5,8
rise,1,5\nrise,2,12\nrise,3,20\nrise,4,30\nrise,5,42
fall,1,40\nfall,2,31\nfall,3,22\nfall,4,12\nfall,5,4
flatline,1,20\nflatline,2,21\nflatline,3,20\nflatline,4,19\nflatline,5,20
"
}

#[test]
fn csv_to_topk_with_regex() {
    let table = shapesearch::datastore::csv::read_str(sales_csv()).unwrap();
    let spec = VisualSpec::new("product", "week", "sales");
    let engine = ShapeEngine::new(&table, &spec).unwrap();

    let q = parse_regex("[p=up][p=down]").unwrap();
    let results = engine.top_k(&q, 2).unwrap();
    let keys: Vec<&str> = results.iter().map(|r| r.key.as_str()).collect();
    assert!(
        keys.contains(&"peak_a") && keys.contains(&"peak_b"),
        "{keys:?}"
    );

    // Per-visualization normalization (canvas or z-score, §5.3) rescales a
    // near-constant series so its noise fills the canvas — so `flat` cannot
    // distinguish "flatline" from a symmetric peak, but it must rank the
    // clearly sloped series last.
    let q = parse_regex("[p=flat]").unwrap();
    let all = engine.top_k(&q, 5).unwrap();
    let bottom: Vec<&str> = all[3..].iter().map(|r| r.key.as_str()).collect();
    assert!(
        bottom.contains(&"rise") && bottom.contains(&"fall"),
        "{all:?}"
    );

    let q = parse_regex("[p=up]").unwrap();
    assert_eq!(engine.top_k(&q, 1).unwrap()[0].key, "rise");
}

#[test]
fn json_lines_round_trip() {
    let mut lines = String::new();
    for (z, pts) in [("up", [1.0, 2.0, 3.0, 4.0]), ("down", [4.0, 3.0, 2.0, 1.0])] {
        for (i, y) in pts.iter().enumerate() {
            lines.push_str(&format!("{{\"g\":\"{z}\",\"t\":{i},\"v\":{y}}}\n"));
        }
    }
    let table = shapesearch::datastore::json::read_str(&lines).unwrap();
    let engine = ShapeEngine::new(&table, &VisualSpec::new("g", "t", "v")).unwrap();
    let best = engine.top_k(&parse_regex("[p=up]").unwrap(), 1).unwrap();
    assert_eq!(best[0].key, "up");
}

#[test]
fn nl_and_regex_agree_on_genomics_query() {
    let nl = parse_natural_language(
        "show me genes that are rising, then going down, and then increasing",
    )
    .unwrap();
    let re = parse_regex("[p=up][p=down][p=up]").unwrap();
    assert_eq!(nl.query, re);
}

#[test]
fn nl_query_executes_like_regex() {
    let table = shapesearch::datastore::csv::read_str(sales_csv()).unwrap();
    let spec = VisualSpec::new("product", "week", "sales");
    let engine = ShapeEngine::new(&table, &spec).unwrap();

    let nl = parse_natural_language("products that are rising then falling").unwrap();
    let re = parse_regex("[p=up][p=down]").unwrap();
    assert_eq!(nl.query, re);
    let a = engine.top_k(&nl.query, 3).unwrap();
    let b = engine.top_k(&re, 3).unwrap();
    assert_eq!(a, b);
}

#[test]
fn all_segmenters_run_table11_queries() {
    use shapesearch::datagen::table11::DatasetId;
    // Small subsets keep this fast while exercising every algorithm on
    // every dataset's first fuzzy query and the non-fuzzy query.
    for id in DatasetId::ALL {
        let data: Vec<_> = id.generate(7).into_iter().take(12).collect();
        for kind in [
            SegmenterKind::Dp,
            SegmenterKind::SegmentTree,
            SegmenterKind::SegmentTreePruned,
            SegmenterKind::Greedy,
            SegmenterKind::Dtw,
            SegmenterKind::Euclidean,
        ] {
            let engine = ShapeEngine::from_trendlines(data.clone()).with_segmenter(kind);
            let fq = parse_regex(id.fuzzy_queries()[0]).unwrap();
            let r = engine.top_k(&fq, 5).unwrap();
            assert!(!r.is_empty(), "{kind:?} on {} fuzzy", id.name());
            let nq = parse_regex(id.non_fuzzy_query()).unwrap();
            let r = engine.top_k(&nq, 5);
            assert!(r.is_ok(), "{kind:?} on {} non-fuzzy", id.name());
        }
    }
}

#[test]
fn segment_tree_close_to_dp_on_real_mixtures() {
    use shapesearch::datagen::table11::DatasetId;
    let data: Vec<_> = DatasetId::RealEstate
        .generate(7)
        .into_iter()
        .take(40)
        .collect();
    let q = parse_regex("[p=up][p=down][p=up][p=down]").unwrap();
    let dp = ShapeEngine::from_trendlines(data.clone()).with_segmenter(SegmenterKind::Dp);
    let tree = ShapeEngine::from_trendlines(data).with_segmenter(SegmenterKind::SegmentTree);
    let top_dp = dp.top_k(&q, 10).unwrap();
    let top_tree = tree.top_k(&q, 10).unwrap();
    let dp_keys: Vec<&str> = top_dp.iter().map(|r| r.key.as_str()).collect();
    let overlap = top_tree
        .iter()
        .filter(|r| dp_keys.contains(&r.key.as_str()))
        .count();
    assert!(overlap >= 7, "tree/dp top-10 overlap only {overlap}");
    // Tree never exceeds the optimal score.
    assert!(top_tree[0].score <= top_dp[0].score + 1e-9);
}

#[test]
fn pruned_run_preserves_top_k() {
    use shapesearch::datagen::table11::DatasetId;
    let data: Vec<_> = DatasetId::Words50
        .generate(9)
        .into_iter()
        .take(60)
        .collect();
    let q = parse_regex("[p=flat][p=up][p=down][p=flat]").unwrap();
    let plain =
        ShapeEngine::from_trendlines(data.clone()).with_segmenter(SegmenterKind::SegmentTree);
    let pruned =
        ShapeEngine::from_trendlines(data).with_segmenter(SegmenterKind::SegmentTreePruned);
    let a = plain.top_k(&q, 5).unwrap();
    let b = pruned.top_k(&q, 5).unwrap();
    let ka: Vec<&str> = a.iter().map(|r| r.key.as_str()).collect();
    let kb: Vec<&str> = b.iter().map(|r| r.key.as_str()).collect();
    assert_eq!(ka, kb);
}

#[test]
fn sketch_pipeline_matches_drawn_shape() {
    use shapesearch::parser::sketch::{sketch_to_pattern_query, Canvas};
    let canvas = Canvas {
        width: 100.0,
        height: 100.0,
        x_domain: (1.0, 5.0),
        y_domain: (0.0, 50.0),
    };
    // Draw a peak (pixel y grows downward).
    let stroke: Vec<(f64, f64)> = (0..=10)
        .map(|i| {
            let x = i as f64 * 10.0;
            let y = if i <= 5 {
                90.0 - 16.0 * i as f64
            } else {
                10.0 + 16.0 * (i - 5) as f64
            };
            (x, y)
        })
        .collect();
    let q = sketch_to_pattern_query(&stroke, &canvas, 0.12).unwrap();
    assert_eq!(q.to_string(), "[p=up][p=down]");

    let table = shapesearch::datastore::csv::read_str(sales_csv()).unwrap();
    let engine = ShapeEngine::new(&table, &VisualSpec::new("product", "week", "sales")).unwrap();
    let top = engine.top_k(&q, 1).unwrap();
    assert!(top[0].key.starts_with("peak"));
}

#[test]
fn filters_flow_through_extract() {
    let table = shapesearch::datastore::csv::read_str(sales_csv()).unwrap();
    let spec = VisualSpec::new("product", "week", "sales").with_filter(Predicate::new(
        "product",
        CompareOp::Ne,
        "fall",
    ));
    let engine = ShapeEngine::new(&table, &spec).unwrap();
    let q = parse_regex("[p=down]").unwrap();
    let results = engine.top_k(&q, 5).unwrap();
    assert!(results.iter().all(|r| r.key != "fall"));
}

#[test]
fn aggregation_dataset_end_to_end() {
    // The Real-Estate-style table with multiple listings per month.
    let table = shapesearch::datagen::table11::real_estate_table(3, 8);
    let spec = VisualSpec::new("region", "month", "price").with_aggregation(Aggregation::Avg);
    let engine = ShapeEngine::new(&table, &spec).unwrap();
    let q = parse_regex("[p=up] | [p=down]").unwrap();
    let results = engine.top_k(&q, 3).unwrap();
    assert_eq!(results.len(), 3);
    assert!(results[0].score >= results[1].score);
}
