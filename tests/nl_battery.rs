//! A battery of natural-language queries spanning the paper's examples and
//! the Table-10 task vocabulary, checking the full tag → resolve → translate
//! pipeline output. Uses one shared trained parser (training is seeded and
//! deterministic).

use shapesearch_parser::NlParser;
use std::sync::OnceLock;

fn parser() -> &'static NlParser {
    static P: OnceLock<NlParser> = OnceLock::new();
    P.get_or_init(NlParser::train_default)
}

/// Asserts the NL text translates to exactly the expected regex form.
fn expect(text: &str, expected: &str) {
    let parsed = parser()
        .parse(text)
        .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
    assert_eq!(
        parsed.query.to_string(),
        expected,
        "for NL input `{text}` (entities: {:?})",
        parsed.entities
    );
}

#[test]
fn basic_sequences() {
    expect("rising then falling", "[p=up][p=down]");
    expect("going up and then going down", "[p=up][p=down]");
    expect("increasing followed by decreasing", "[p=up][p=down]");
    expect(
        "show me stocks that are climbing then dropping then climbing",
        "[p=up][p=down][p=up]",
    );
    expect("first flat then rising", "[p=flat][p=up]");
}

#[test]
fn paper_figure2_query() {
    expect(
        "show me genes that are rising, then going down, and then increasing",
        "[p=up][p=down][p=up]",
    );
}

#[test]
fn modifiers() {
    expect("rising sharply", "[p=up, m=>>]");
    expect("falling steeply", "[p=down, m=>>]");
    expect("increasing gradually", "[p=up, m=>]");
    expect(
        "rising slowly then dropping quickly",
        "[p=up, m=>][p=down, m=>>]",
    );
}

#[test]
fn disjunction_and_negation() {
    expect("either rising or falling", "[p=up] | [p=down]");
    expect("stable or declining", "[p=flat] | [p=down]");
    expect("not flat", "![p=flat]");
}

#[test]
fn locations() {
    expect("rising from 2 to 5", "[x.s=2, x.e=5, p=up]");
    expect(
        "increasing from 10 to 80 then falling",
        "[x.s=10, x.e=80, p=up][p=down]",
    );
}

#[test]
fn widths_and_counts() {
    expect("rising over 3 months", "[x.s=., x.e=.+3, p=up]");
    expect("at least 2 peaks", "[p=[[p=up][p=down]], m={2,}]");
    expect("exactly 3 dips", "[p=down, m=3]");
    expect("rising twice", "[p=up, m=2]");
}

#[test]
fn vocabulary_breadth() {
    // Synonyms and related words outside the core templates.
    expect("surging then plunging", "[p=up][p=down]");
    expect("declining then recovering", "[p=down][p=up]");
    expect("stocks plateauing", "[p=flat]");
}

#[test]
fn ambiguity_resolutions_reported() {
    // The paper's semantic-ambiguity example: "increasing from y=10 to y=5".
    let parsed = parser().parse("increasing from y = 10 to y = 5").unwrap();
    assert_eq!(parsed.query.to_string(), "[y.s=5, y.e=10, p=up]");
    assert!(!parsed.notes.is_empty(), "a resolution note is expected");
}

#[test]
fn noise_words_are_ignored() {
    expect(
        "could you please show me all of the stocks that are really rising and then falling",
        "[p=up][p=down]",
    );
}

#[test]
fn garbage_is_rejected() {
    assert!(parser().parse("the quick brown fox").is_err());
    assert!(parser().parse("").is_err());
    assert!(parser().parse("42 17 3").is_err());
}

#[test]
fn entities_align_with_tokens() {
    let entities = parser().tag("rising from 2 to 5 then falling sharply");
    // Every returned entity token must appear in the sentence.
    for e in &entities {
        assert!(
            "rising from 2 to 5 then falling sharply".contains(&e.token),
            "{e:?}"
        );
    }
    // Numbers get location labels.
    let labels: Vec<(&str, &str)> = entities
        .iter()
        .map(|e| (e.token.as_str(), e.label.as_str()))
        .collect();
    assert!(labels.contains(&("2", "XS")), "{labels:?}");
    assert!(labels.contains(&("5", "XE")), "{labels:?}");
}
