//! File-level I/O round trips: writing CSV / JSON-lines to disk, reading
//! them back through the datastore, and querying — plus CLI-style filter
//! flows.

use shapesearch::prelude::*;
use std::fs;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("shapesearch_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn csv_file_round_trip() {
    let path = temp_path("roundtrip.csv");
    fs::write(
        &path,
        "z,x,y\na,1,1.0\na,2,2.0\na,3,3.0\nb,1,3.0\nb,2,2.0\nb,3,1.0\n",
    )
    .unwrap();
    let table = shapesearch::datastore::csv::read_file(&path).unwrap();
    assert_eq!(table.num_rows(), 6);
    let engine = ShapeEngine::new(&table, &VisualSpec::new("z", "x", "y")).unwrap();
    assert_eq!(
        engine.top_k(&parse_regex("[p=up]").unwrap(), 1).unwrap()[0].key,
        "a"
    );
    fs::remove_file(&path).ok();
}

#[test]
fn json_file_round_trip() {
    let path = temp_path("roundtrip.jsonl");
    let mut content = String::new();
    for i in 0..6 {
        content.push_str(&format!(
            "{{\"z\":\"g\",\"x\":{i},\"y\":{}}}\n",
            (i as f64).sin()
        ));
    }
    fs::write(&path, content).unwrap();
    let table = shapesearch::datastore::json::read_file(&path).unwrap();
    assert_eq!(table.num_rows(), 6);
    fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = shapesearch::datastore::csv::read_file("/nonexistent/nope.csv");
    assert!(err.is_err());
    let err = shapesearch::datastore::json::read_file("/nonexistent/nope.jsonl");
    assert!(err.is_err());
}

#[test]
fn bin_width_reduces_resolution_but_keeps_ranking() {
    use shapesearch_core::EngineOptions;
    let data = shapesearch::datagen::table11::DatasetId::Weather.generate(5);
    let subset: Vec<_> = data.into_iter().take(20).collect();
    let q = parse_regex("[p=up][p=down]").unwrap();

    let fine = ShapeEngine::from_trendlines(subset.clone());
    let coarse = ShapeEngine::from_trendlines(subset).with_options(EngineOptions {
        bin_width: 4,
        ..EngineOptions::default()
    });
    let top_fine = fine.top_k(&q, 5).unwrap();
    let top_coarse = coarse.top_k(&q, 5).unwrap();
    // Binning by 4 keeps the broad ranking: at least 3 of 5 keys shared.
    let fine_keys: Vec<&str> = top_fine.iter().map(|r| r.key.as_str()).collect();
    let shared = top_coarse
        .iter()
        .filter(|r| fine_keys.contains(&r.key.as_str()))
        .count();
    assert!(shared >= 3, "only {shared} shared keys");
}
