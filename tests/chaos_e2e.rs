//! Fault-injection tests of **shard replication**: real `shapesearch`
//! services behind [`ChaosProxy`] instances that black-hole, reset,
//! delay, or truncate traffic, proving the failover tier's headline
//! invariant — results stay **byte-identical** to a single-process run
//! under every injected failure mode, as long as each shard keeps at
//! least one healthy replica.
//!
//! Three layers of evidence:
//!
//! * a mode matrix over a 2-shard × 2-replica topology (pass, delay,
//!   black-hole, reset, truncate — then healthy again), each mode's
//!   results diffed byte-for-byte against the single-process reference,
//!   with the per-replica request/error/ejection counters reconciled
//!   between `/healthz` and `/metrics` at the end;
//! * the PR-5 stale-hint re-query path under failure: a poisoned
//!   `threshold_hint` arriving over live sockets while every shard's
//!   primary replica is dead still yields exact results via the
//!   fallback replica;
//! * a property sweep (proptest shim) over shard counts {1, 2, 4} ×
//!   replica-assignment permutations × failure subsets leaving ≥1
//!   healthy replica per shard, every case byte-identical to the
//!   unsharded engine.

use proptest::test_runner::TestRng;
use shapesearch::server::{json, protocol, ChaosMode, ChaosProxy, Client, ServerConfig, Service};
use shapesearch_core::EngineOptions;
use shapesearch_datastore::{csv, table_from_series, Table};
use std::time::{Duration, Instant};

/// A deterministic collection with mixed shapes and **exact duplicate
/// trendlines** (every fourth series repeats one peak shape), so the
/// top-k contains real score ties that straddle shard boundaries — the
/// tie-order half of the byte-identity claim is exercised under
/// failover, not vacuous.
fn market_table() -> Table {
    let n_series = 12;
    let n_points = 80;
    let series: Vec<(String, Vec<(f64, f64)>)> = (0..n_series)
        .map(|s| {
            let points: Vec<(f64, f64)> = (0..n_points)
                .map(|i| {
                    let t = i as f64;
                    let y = if s % 4 == 3 {
                        // Exact duplicates of one peak: tied scores.
                        if t < 40.0 {
                            t
                        } else {
                            80.0 - t
                        }
                    } else {
                        let phase = s as f64 * 0.61;
                        let freq = 0.05 + (s % 5) as f64 * 0.021;
                        (t * freq + phase).sin() * 2.0 + ((s % 3) as f64 - 1.0) * 0.01 * t
                    };
                    (t, y)
                })
                .collect();
            (format!("series{s:02}"), points)
        })
        .collect();
    table_from_series("ticker", "day", "price", &series)
}

fn boot_with(config: ServerConfig) -> Service {
    shapesearch::server::serve("127.0.0.1:0", config).unwrap()
}

fn boot() -> Service {
    boot_with(ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    })
}

/// Registers `market_table` on a service over HTTP, with optional
/// extras spliced into the registration object (`"shard_of": …`,
/// `"shard_endpoints": …`, `"shards": …`).
fn register_market(client: &Client, extras: Vec<(String, json::Json)>) -> json::Json {
    let mut fields = vec![
        ("name".into(), "market".into()),
        ("id".into(), "market".into()),
        ("csv".into(), csv::write_str(&market_table()).into()),
        ("z".into(), "ticker".into()),
        ("x".into(), "day".into()),
        ("y".into(), "price".into()),
    ];
    fields.extend(extras);
    client
        .post("/datasets", &json::Json::Obj(fields))
        .unwrap()
        .expect_ok("register")
}

/// The list-of-lists `"shard_endpoints"` wire form: one replica list
/// per shard slot.
fn replicas_json(placement: &[Vec<String>]) -> json::Json {
    json::Json::Arr(
        placement
            .iter()
            .map(|replicas| {
                json::Json::Arr(
                    replicas
                        .iter()
                        .map(|ep| json::Json::Str(ep.clone()))
                        .collect(),
                )
            })
            .collect(),
    )
}

fn query_body(query: &str, k: usize) -> json::Json {
    json::parse(&format!(
        r#"{{"dataset":"market","query":"{query}","k":{k}}}"#
    ))
    .unwrap()
}

/// One counter/gauge sample's value out of a Prometheus text
/// exposition, matched on the exact `name{labels}` prefix.
fn metric_value(text: &str, series: &str) -> Option<u64> {
    text.lines()
        .find(|l| {
            l.strip_prefix(series)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Reserves an ephemeral port and immediately frees it: an endpoint
/// that refuses connections — the shape of a replica that never came
/// up.
fn dead_endpoint() -> String {
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let endpoint = reserved.local_addr().unwrap().to_string();
    drop(reserved);
    endpoint
}

/// The acceptance matrix: a 2-shard topology where each shard's
/// *primary* replica sits behind a chaos proxy and the fallback replica
/// is a plain live server. Every injected failure mode must leave
/// query results byte-identical to the single-process reference, and
/// the per-replica counters on `/healthz` must reconcile with the
/// `/metrics` exposition afterwards.
#[test]
fn every_failure_mode_with_a_live_replica_is_byte_identical_to_single_process() {
    // Single-process reference.
    let reference_service = boot();
    let reference = Client::new(reference_service.addr());
    register_market(&reference, vec![("shards".into(), 1usize.into())]);
    let want = reference
        .post("/query", &query_body("[p=up][p=down]", 6))
        .unwrap()
        .expect_ok("reference")
        .get("results")
        .unwrap()
        .to_text();

    // Two shard servers per shard slot: a primary (fronted by a chaos
    // proxy) and a fallback replica, both owning partition i/2.
    let shards = 2usize;
    let primaries: Vec<Service> = (0..shards).map(|_| boot()).collect();
    let fallbacks: Vec<Service> = (0..shards).map(|_| boot()).collect();
    for (i, service) in primaries.iter().chain(fallbacks.iter()).enumerate() {
        register_market(
            &Client::new(service.addr()),
            vec![("shard_of".into(), format!("{}/{shards}", i % shards).into())],
        );
    }
    let proxies: Vec<ChaosProxy> = primaries
        .iter()
        .map(|p| ChaosProxy::start(&p.addr().to_string()).unwrap())
        .collect();
    let placement: Vec<Vec<String>> = (0..shards)
        .map(|i| vec![proxies[i].endpoint(), fallbacks[i].addr().to_string()])
        .collect();

    // The router: short I/O timeout so a black-holed replica costs one
    // bounded stall, not the 60 s default.
    let router_service = boot_with(ServerConfig {
        workers: 3,
        shard_connect_timeout_ms: 500,
        shard_io_timeout_ms: 600,
        ..ServerConfig::default()
    });
    let router = Client::new(router_service.addr());

    // Healthy modes first (traffic flows *through* the proxy), then the
    // failure modes — with the default eject-after-3 breaker, each
    // failure mode gets exactly one live attempt against the proxy
    // before the third failure ejects it — then healthy-shaped traffic
    // again with the primaries still ejected.
    let modes = [
        ("pass", ChaosMode::Pass),
        ("delay", ChaosMode::Delay(Duration::from_millis(100))),
        ("black-hole", ChaosMode::BlackHole),
        ("reset", ChaosMode::Reset),
        ("truncate", ChaosMode::Truncate(64)),
        ("pass-again", ChaosMode::Pass),
    ];
    for (label, mode) in modes {
        for proxy in &proxies {
            proxy.set_mode(mode);
        }
        // Re-register: the generation bump clears the cache, so every
        // mode is a cold computation over the wire.
        register_market(
            &router,
            vec![("shard_endpoints".into(), replicas_json(&placement))],
        );
        let started = Instant::now();
        let reply = router
            .post("/query", &query_body("[p=up][p=down]", 6))
            .unwrap()
            .expect_ok(&format!("mode {label}"));
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "mode {label} must fail over promptly, not hang: {:?}",
            started.elapsed()
        );
        assert_eq!(reply.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(reply.get("shards").unwrap().as_usize(), Some(shards));
        assert_eq!(
            reply.get("results").unwrap().to_text(),
            want,
            "results diverged from single-process under mode {label}"
        );
    }
    // The healthy modes really exercised the proxy path.
    for proxy in &proxies {
        assert!(
            proxy.connections() >= 2,
            "proxy saw {}",
            proxy.connections()
        );
    }

    // Per-replica counters: /healthz rows and the /metrics exposition
    // must tell the same story, and the failure schedule above pins the
    // proxies' exact error and ejection counts.
    let health = router.get("/healthz").unwrap().expect_ok("healthz");
    let remote = health.get("remote_shards").unwrap();
    let (status, metrics_text) = router.get_text("/metrics").unwrap();
    assert_eq!(status, 200);

    let proxy_endpoints: Vec<String> = proxies.iter().map(ChaosProxy::endpoint).collect();
    let rows = remote.get("by_endpoint").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), 2 * shards, "{}", health.to_text());
    let mut requests_sum = 0;
    let mut errors_sum = 0;
    for row in rows {
        let endpoint = row.get("endpoint").unwrap().as_str().unwrap();
        let requests = row.get("requests").unwrap().as_usize().unwrap() as u64;
        let errors = row.get("errors").unwrap().as_usize().unwrap() as u64;
        let ejections = row.get("ejections").unwrap().as_usize().unwrap() as u64;
        requests_sum += requests;
        errors_sum += errors;
        for (family, value) in [
            ("shapesearch_remote_requests_total", requests),
            ("shapesearch_remote_errors_total", errors),
            ("shapesearch_remote_ejections_total", ejections),
        ] {
            assert_eq!(
                metric_value(
                    &metrics_text,
                    &format!("{family}{{endpoint=\"{endpoint}\"}}")
                ),
                Some(value),
                "{family} for {endpoint} disagrees with healthz"
            );
        }
        // The ejected gauge exists per endpoint; its value is
        // time-dependent (probe windows reopen), so only presence is
        // pinned here.
        assert!(
            metric_value(
                &metrics_text,
                &format!("shapesearch_remote_ejected{{endpoint=\"{endpoint}\"}}")
            )
            .is_some(),
            "missing ejected gauge for {endpoint}"
        );
        if proxy_endpoints.contains(&endpoint.to_string()) {
            // black-hole + reset + truncate, one attempt each; the
            // third failure tripped the breaker exactly once.
            assert_eq!(errors, 3, "proxy {endpoint}: {}", health.to_text());
            assert_eq!(ejections, 1, "proxy {endpoint}: {}", health.to_text());
            assert!(requests >= 5, "proxy {endpoint}: {}", health.to_text());
        } else {
            assert_eq!(errors, 0, "fallback {endpoint}: {}", health.to_text());
            assert_eq!(ejections, 0, "fallback {endpoint}: {}", health.to_text());
            assert!(requests >= 3, "fallback {endpoint}: {}", health.to_text());
        }
    }
    assert_eq!(
        remote.get("requests").unwrap().as_usize().unwrap() as u64,
        requests_sum
    );
    assert_eq!(
        remote.get("errors").unwrap().as_usize().unwrap() as u64,
        errors_sum
    );
    assert_eq!(remote.get("ejections").unwrap().as_usize(), Some(shards));

    drop(proxies);
    for service in primaries.into_iter().chain(fallbacks) {
        service.shutdown();
    }
    router_service.shutdown();
    reference_service.shutdown();
}

/// A CSV with clear peaks buried among falls, big enough that a
/// poisoned pruning hint actually bites (everything gets pruned on the
/// hint's authority, so the un-discharged bound forces the hint-less
/// re-query).
fn haystack_csv() -> String {
    let mut out = String::from("z,x,y");
    for series in 0..12 {
        for t in 0..16 {
            let y = if series % 5 == 2 {
                if t < 8 {
                    t as f64
                } else {
                    16.0 - t as f64
                }
            } else {
                16.0 - t as f64 - 0.05 * series as f64
            };
            out.push_str(&format!("\ns{series},{t},{y}"));
        }
    }
    out
}

/// Satellite: the PR-5 stale-hint re-query path under failure, over
/// live sockets. A `/shard/query` RPC carrying a poisoned
/// `threshold_hint` hits a router whose every shard lists a dead
/// primary replica first: both the hinted pass and the verification's
/// hint-less re-query must fail over to the fallback replicas, and the
/// final partials must still be exact.
#[test]
fn poisoned_hint_with_a_dead_primary_is_exact_via_the_fallback_replica() {
    let haystack = haystack_csv();
    let register_haystack = |client: &Client, id: &str, extras: Vec<(String, json::Json)>| {
        let mut fields = vec![
            ("name".into(), "haystack".into()),
            ("id".into(), id.into()),
            ("csv".into(), haystack.as_str().into()),
            ("z".into(), "z".into()),
            ("x".into(), "x".into()),
            ("y".into(), "y".into()),
        ];
        fields.extend(extras);
        client
            .post("/datasets", &json::Json::Obj(fields))
            .unwrap()
            .expect_ok("register")
    };

    // Live fallback replicas owning partitions 0/2 and 1/2.
    let live: Vec<Service> = (0..2).map(|_| boot()).collect();
    for (i, service) in live.iter().enumerate() {
        register_haystack(
            &Client::new(service.addr()),
            "t1",
            vec![("shard_of".into(), format!("{i}/2").into())],
        );
    }

    // The router: each shard's replica list leads with a dead endpoint.
    let router_service = boot();
    let router = Client::new(router_service.addr());
    let dead: Vec<String> = (0..2).map(|_| dead_endpoint()).collect();
    let placement: Vec<Vec<String>> = (0..2)
        .map(|i| vec![dead[i].clone(), live[i].addr().to_string()])
        .collect();
    register_haystack(
        &router,
        "t1",
        vec![("shard_endpoints".into(), replicas_json(&placement))],
    );

    // All-local reference on the same router.
    register_haystack(&router, "ref", vec![("shards".into(), 2usize.into())]);
    let want = router
        .post(
            "/query",
            &json::parse(r#"{"dataset":"ref","query":"[p=up][p=down]","k":2}"#).unwrap(),
        )
        .unwrap()
        .expect_ok("reference")
        .get("results")
        .unwrap()
        .to_text();

    // The poisoned RPC: a hint far above any real score, as a stale or
    // buggy upstream router could send.
    let query = shapesearch_parser::parse_regex("[p=up][p=down]").unwrap();
    let rpc = protocol::shard_request_to_json(
        "t1",
        &[(query, 2)],
        &[Some(0.999)],
        &EngineOptions::default(),
        None,
    );
    let reply = router
        .post("/shard/query", &rpc)
        .unwrap()
        .expect_ok("poisoned shard RPC");
    let partials = protocol::shard_outcomes_from_json(&reply, 1).unwrap();
    let got = partials.outcomes[0]
        .as_ref()
        .unwrap_or_else(|e| panic!("poisoned hint must not fail the query: {e:?}"));
    assert_eq!(
        protocol::results_to_json(got).to_text(),
        want,
        "a poisoned threshold_hint over a degraded topology must never drop a true top-k result"
    );

    // The failover trail: every dead primary was attempted and failed;
    // every fallback answered both the hinted pass and the hint-less
    // verification re-query without a single error.
    let health = router.get("/healthz").unwrap().expect_ok("healthz");
    let rows = health
        .get("remote_shards")
        .unwrap()
        .get("by_endpoint")
        .unwrap()
        .as_array()
        .unwrap();
    for row in rows {
        let endpoint = row.get("endpoint").unwrap().as_str().unwrap();
        let requests = row.get("requests").unwrap().as_usize().unwrap();
        let errors = row.get("errors").unwrap().as_usize().unwrap();
        if dead.contains(&endpoint.to_string()) {
            assert!(errors >= 1, "dead {endpoint}: {}", health.to_text());
            assert_eq!(requests, errors, "dead {endpoint}: {}", health.to_text());
        } else {
            assert_eq!(errors, 0, "fallback {endpoint}: {}", health.to_text());
            assert!(
                requests >= 2,
                "fallback {endpoint} should have served the hinted pass AND the re-query: {}",
                health.to_text()
            );
        }
    }

    router_service.shutdown();
    for service in live {
        service.shutdown();
    }
}

/// Satellite: the property sweep. For shards ∈ {1, 2} every
/// replica-assignment permutation × failure subset leaving ≥1 healthy
/// replica per shard is enumerated exhaustively; for shards = 4 the
/// space is sampled with the proptest shim's deterministic RNG. Every
/// case must merge byte-identical to the unsharded engine.
#[test]
fn replica_permutations_and_failure_subsets_merge_byte_identical_to_unsharded() {
    // Unsharded reference.
    let reference_service = boot();
    let reference = Client::new(reference_service.addr());
    register_market(&reference, vec![("shards".into(), 1usize.into())]);
    let want = reference
        .post("/query", &query_body("[p=up][p=down]", 8))
        .unwrap()
        .expect_ok("reference")
        .get("results")
        .unwrap()
        .to_text();

    // Bounded I/O timeout: a failed replica costs the sweep at most one
    // short stall per attempt, never the 60 s default.
    let router_service = boot_with(ServerConfig {
        workers: 3,
        shard_connect_timeout_ms: 500,
        shard_io_timeout_ms: 800,
        ..ServerConfig::default()
    });
    let router = Client::new(router_service.addr());
    let mut rng = TestRng::seed_from_u64(0x7e57_c4a0_5eed_0007);

    for shards in [1usize, 2, 4] {
        // Two live replicas per shard, plus one chaos proxy per shard
        // held in connection-reset mode: the "failed replica" every
        // failure subset draws from.
        let live: Vec<Vec<Service>> = (0..shards)
            .map(|i| {
                (0..2)
                    .map(|_| {
                        let service = boot();
                        register_market(
                            &Client::new(service.addr()),
                            vec![("shard_of".into(), format!("{i}/{shards}").into())],
                        );
                        service
                    })
                    .collect()
            })
            .collect();
        let proxies: Vec<ChaosProxy> = (0..shards)
            .map(|i| {
                let proxy = ChaosProxy::start(&live[i][0].addr().to_string()).unwrap();
                proxy.set_mode(ChaosMode::Reset);
                proxy
            })
            .collect();

        // Per-shard replica-list variants: singletons, both healthy
        // orderings, and every position for the failed replica — all
        // leave ≥1 healthy replica.
        let variants: Vec<Vec<Vec<String>>> = (0..shards)
            .map(|i| {
                let h0 = live[i][0].addr().to_string();
                let h1 = live[i][1].addr().to_string();
                let f = proxies[i].endpoint();
                vec![
                    vec![h0.clone()],
                    vec![h1.clone()],
                    vec![h0.clone(), h1.clone()],
                    vec![h1.clone(), h0.clone()],
                    vec![h0.clone(), f.clone()],
                    vec![f.clone(), h0.clone()],
                    vec![h1.clone(), f.clone()],
                    vec![f, h1],
                ]
            })
            .collect();
        let arity = variants[0].len();

        // Exhaustive cross product for small shard counts; sampled for
        // shards = 4 (8^4 topologies is past a test budget).
        let cases: Vec<Vec<usize>> = if shards <= 2 {
            let mut cases = vec![Vec::new()];
            for _ in 0..shards {
                cases = cases
                    .into_iter()
                    .flat_map(|case: Vec<usize>| {
                        (0..arity).map(move |v| {
                            let mut next = case.clone();
                            next.push(v);
                            next
                        })
                    })
                    .collect();
            }
            cases
        } else {
            (0..10)
                .map(|_| {
                    (0..shards)
                        .map(|_| rng.below(arity as u64) as usize)
                        .collect()
                })
                .collect()
        };

        for case in cases {
            let placement: Vec<Vec<String>> = case
                .iter()
                .enumerate()
                .map(|(i, &v)| variants[i][v].clone())
                .collect();
            register_market(
                &router,
                vec![("shard_endpoints".into(), replicas_json(&placement))],
            );
            let reply = router
                .post("/query", &query_body("[p=up][p=down]", 8))
                .unwrap()
                .expect_ok(&format!("shards={shards} case={case:?}"));
            assert_eq!(reply.get("cached").unwrap().as_bool(), Some(false));
            assert_eq!(
                reply.get("results").unwrap().to_text(),
                want,
                "shards={shards} placement {placement:?} diverged from the unsharded engine"
            );
        }

        drop(proxies);
        for service in live.into_iter().flatten() {
            service.shutdown();
        }
    }

    router_service.shutdown();
    reference_service.shutdown();
}

/// Chaos modes aimed straight at the **evented listener** (no failover
/// tier in between): a client talking through a [`ChaosProxy`] to a
/// 2-event-thread server gets byte-identical `results` under `Pass` and
/// `Delay`, a `Truncate`d response dies mid-write without wedging
/// anything, and after every mode the connection slots are fully
/// reclaimed — `/healthz` `connections.active` returns to exactly the
/// one connection carrying the healthz probe itself.
#[test]
fn evented_listener_survives_delay_and_truncate_with_clean_slot_reclamation() {
    use std::io::{Read, Write};

    let service = boot_with(ServerConfig {
        workers: 2,
        event_threads: 2,
        ..ServerConfig::default()
    });
    let direct = Client::new(service.addr());
    register_market(&direct, vec![("shards".into(), 1usize.into())]);
    let want = direct
        .post("/query", &query_body("[p=up][p=down]", 6))
        .unwrap()
        .expect_ok("reference")
        .get("results")
        .unwrap()
        .to_text();

    // `connections.active` as /healthz reports it: the probe's own
    // connection is itself active while the handler runs, so a fully
    // drained server reports exactly 1.
    let active = || {
        direct
            .get("/healthz")
            .unwrap()
            .expect_ok("healthz")
            .get("connections")
            .unwrap()
            .get("active")
            .unwrap()
            .as_usize()
            .unwrap()
    };
    let wait_drained = |label: &str| {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let now = active();
            if now == 1 {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "after {label}: {now} connections still active — slots not reclaimed"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let proxy = ChaosProxy::start(&service.addr().to_string()).unwrap();
    let through = Client::new(proxy.addr());

    for (label, mode) in [
        ("pass", ChaosMode::Pass),
        ("delay", ChaosMode::Delay(Duration::from_millis(100))),
        ("pass-after-delay", ChaosMode::Pass),
    ] {
        proxy.set_mode(mode);
        let reply = through
            .post("/query", &query_body("[p=up][p=down]", 6))
            .unwrap()
            .expect_ok(&format!("mode {label}"));
        assert_eq!(
            reply.get("results").unwrap().to_text(),
            want,
            "results diverged through the proxy under mode {label}"
        );
        wait_drained(label);
    }

    // Truncate: the server writes a full response but the far side
    // vanishes after 64 bytes. The client must NOT see a valid reply,
    // and the server must notice the dead peer and free the slot.
    proxy.set_mode(ChaosMode::Truncate(64));
    let mut stream = std::net::TcpStream::connect(proxy.addr()).unwrap();
    let body = query_body("[p=up][p=down]", 6).to_text();
    write!(
        stream,
        "POST /query HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut got = Vec::new();
    stream.read_to_end(&mut got).unwrap_or(0);
    assert!(
        got.len() <= 64,
        "truncate relayed {} bytes, expected at most 64",
        got.len()
    );
    drop(stream);
    wait_drained("truncate");

    // The listener is unharmed: a healthy query straight at it (and one
    // more through the now-clean proxy) still answers identically.
    proxy.set_mode(ChaosMode::Pass);
    for (label, client) in [("direct", &direct), ("proxy", &through)] {
        let reply = client
            .post("/query", &query_body("[p=up][p=down]", 6))
            .unwrap()
            .expect_ok(label);
        assert_eq!(reply.get("results").unwrap().to_text(), want, "{label}");
    }
    wait_drained("final");

    let health = direct.get("/healthz").unwrap().expect_ok("healthz");
    let conns = health.get("connections").unwrap();
    let accepted = conns.get("accepted_total").unwrap().as_usize().unwrap();
    assert!(accepted >= 8, "accepted_total={accepted}");

    drop(proxy);
    service.shutdown();
}
