//! Property-based tests (proptest) on the core invariants:
//!
//! * summarized-statistics additivity (Theorem 5.1),
//! * score boundedness under arbitrary operator trees (Property 5.1),
//! * DP optimality vs SegmentTree and Greedy,
//! * Theorem 6.4 score bounds containing the exact score,
//! * parser round-trip (AST → regex text → AST).

use proptest::prelude::*;
use shapesearch_core::algo::dp::DpSegmenter;
use shapesearch_core::algo::greedy::GreedySegmenter;
use shapesearch_core::algo::pruning::query_bounds;
use shapesearch_core::algo::segment_tree::SegmentTreeSegmenter;
use shapesearch_core::chain::expand_chains;
use shapesearch_core::{EngineOptions, PruningMode, SegmenterKind, ShapeEngine, ShardedEngine};
use shapesearch_core::{
    Evaluator, Modifier, Pattern, ScoreParams, Segmenter, ShapeQuery, ShapeSegment, StatsIndex,
    SummaryStats, UdpRegistry, VizData,
};
use shapesearch_datastore::Trendline;
use shapesearch_parser::parse_regex;

fn viz_from_ys(ys: &[f64]) -> VizData {
    let pairs: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
    VizData::from_trendline(&Trendline::from_pairs("prop", &pairs), 0, 1).expect("≥2 points")
}

/// Strategy: a plausible trendline of 6–40 points.
fn ys_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 6..40)
}

/// Strategy: a small random operator tree over leaf patterns.
fn query_strategy() -> impl Strategy<Value = ShapeQuery> {
    let leaf = prop_oneof![
        Just(ShapeQuery::up()),
        Just(ShapeQuery::down()),
        Just(ShapeQuery::flat()),
        Just(ShapeQuery::pattern(Pattern::Slope(30.0))),
        Just(ShapeQuery::pattern(Pattern::Any)),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(ShapeQuery::concat),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(ShapeQuery::Or),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(ShapeQuery::And),
            inner.prop_map(|q| ShapeQuery::Not(Box::new(q))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stats_additivity(
        a in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..20),
        b in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..20),
    ) {
        let merged = SummaryStats::from_points(&a).merge(&SummaryStats::from_points(&b));
        let all: Vec<(f64, f64)> = a.iter().chain(b.iter()).copied().collect();
        let direct = SummaryStats::from_points(&all);
        prop_assert!((merged.slope() - direct.slope()).abs() < 1e-6);
        prop_assert!((merged.intercept() - direct.intercept()).abs() < 1e-6);
        prop_assert_eq!(merged.n, direct.n);
    }

    #[test]
    fn stats_index_matches_direct(ys in ys_strategy()) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let idx = StatsIndex::new(&xs, &ys);
        let n = ys.len();
        // Check a few ranges including the extremes.
        for (i, j) in [(0, n - 1), (0, 1), (n - 2, n - 1), (n / 3, 2 * n / 3 + 1)] {
            if j > i && j < n {
                let pts: Vec<(f64, f64)> = (i..=j).map(|t| (xs[t], ys[t])).collect();
                let direct = SummaryStats::from_points(&pts);
                prop_assert!((idx.range(i, j).slope() - direct.slope()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn scores_always_bounded(ys in ys_strategy(), q in query_strategy()) {
        let viz = viz_from_ys(&ys);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&viz, &params, &udps);
        let chains = expand_chains(&q);
        for segmenter in [
            &DpSegmenter as &dyn Segmenter,
            &SegmentTreeSegmenter::default(),
            &GreedySegmenter::new(),
        ] {
            let r = segmenter.match_viz(&ev, &chains);
            prop_assert!((-1.0..=1.0).contains(&r.score), "score {} for {}", r.score, q);
        }
    }

    #[test]
    fn dp_dominates_heuristics(ys in ys_strategy(), q in query_strategy()) {
        let viz = viz_from_ys(&ys);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&viz, &params, &udps);
        let chains = expand_chains(&q);
        let dp = DpSegmenter.match_viz(&ev, &chains).score;
        let tree = SegmentTreeSegmenter::default().match_viz(&ev, &chains).score;
        let greedy = GreedySegmenter::new().match_viz(&ev, &chains).score;
        prop_assert!(tree <= dp + 1e-9, "tree {tree} > dp {dp} for {q}");
        prop_assert!(greedy <= dp + 1e-9, "greedy {greedy} > dp {dp} for {q}");
    }

    #[test]
    fn bounds_contain_exact_score(ys in ys_strategy(), q in query_strategy()) {
        let viz = viz_from_ys(&ys);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&viz, &params, &udps);
        let chains = expand_chains(&q);
        let exact = DpSegmenter.match_viz(&ev, &chains).score;
        let (lo, hi) = query_bounds(&q, &viz, &params);
        // Infeasible queries (more units than intervals) return −1, which is
        // always within the trivial bound range.
        prop_assert!(exact >= lo - 1e-6 && exact <= hi + 1e-6,
            "score {exact} outside [{lo}, {hi}] for {q}");
    }

    #[test]
    fn segmentation_tiles_and_orders(ys in ys_strategy()) {
        let viz = viz_from_ys(&ys);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&viz, &params, &udps);
        let q = ShapeQuery::concat(vec![ShapeQuery::up(), ShapeQuery::down(), ShapeQuery::up()]);
        let chains = expand_chains(&q);
        let r = DpSegmenter.match_viz(&ev, &chains);
        if !r.ranges.is_empty() {
            prop_assert_eq!(r.ranges[0].0, 0);
            prop_assert_eq!(r.ranges.last().unwrap().1, viz.n() - 1);
            for w in r.ranges.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
            for &(s, e) in &r.ranges {
                prop_assert!(e > s);
            }
        }
    }

    #[test]
    fn regex_round_trip(q in query_strategy()) {
        let text = q.to_string();
        let reparsed = parse_regex(&text).map_err(|e| {
            TestCaseError::fail(format!("reparse of `{text}` failed: {e}"))
        })?;
        prop_assert_eq!(q, reparsed);
    }

    #[test]
    fn quantifier_scores_bounded(ys in ys_strategy(), min in 1u32..4, span in 0u32..3) {
        let viz = viz_from_ys(&ys);
        let params = ScoreParams::default();
        let udps = UdpRegistry::new();
        let ev = Evaluator::new(&viz, &params, &udps);
        let seg = ShapeSegment::pattern(Pattern::Up).with_modifier(Modifier::Quantifier {
            min: Some(min),
            max: Some(min + span),
        });
        let s = ev.eval_segment(&seg, 0, viz.n() - 1, None);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn znormalize_is_affine_invariant(
        ys in proptest::collection::vec(-100.0f64..100.0, 4..30),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let a = shapesearch_similarity::znormalize(&ys);
        let transformed: Vec<f64> = ys.iter().map(|y| y * scale + shift).collect();
        let b = shapesearch_similarity::znormalize(&transformed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn pruned_execution_is_byte_identical_for_exact_segmenters_and_shards(
        collection in proptest::collection::vec(ys_strategy(), 8..24),
        q in query_strategy(),
        k in 1usize..8,
    ) {
        let tls: Vec<shapesearch_datastore::Trendline> = collection
            .iter()
            .enumerate()
            .map(|(i, ys)| {
                let pairs: Vec<(f64, f64)> =
                    ys.iter().enumerate().map(|(t, &y)| (t as f64, y)).collect();
                shapesearch_datastore::Trendline::from_pairs(format!("t{i}"), &pairs)
            })
            .collect();
        // (segmenter, the mode under which it prunes): every exact
        // segmenter under the Auto default, plus Greedy under Force.
        let matrix = [
            (SegmenterKind::Dp, PruningMode::Auto),
            (SegmenterKind::SegmentTree, PruningMode::Auto),
            (SegmenterKind::SegmentTreePruned, PruningMode::Auto),
            (SegmenterKind::Greedy, PruningMode::Force),
        ];
        for (kind, mode) in matrix {
            let off = EngineOptions {
                segmenter: kind,
                pruning_mode: PruningMode::Off,
                ..EngineOptions::default()
            };
            let on = EngineOptions {
                segmenter: kind,
                pruning_mode: mode,
                ..EngineOptions::default()
            };
            let want = ShapeEngine::from_trendlines(tls.clone())
                .with_options(off)
                .top_k(&q, k);
            let want = want.expect("strategy queries carry no UDPs");
            for shards in [1usize, 2, 7] {
                let got = ShardedEngine::from_trendlines(tls.clone(), shards)
                    .with_options(on.clone())
                    .top_k(&q, k)
                    .expect("strategy queries carry no UDPs");
                // Byte-identical: scores, tie order, and fitted ranges.
                prop_assert_eq!(
                    &got, &want,
                    "{:?}/{:?} shards={} k={} diverged on {}",
                    kind, mode, shards, k, q
                );
            }
        }
    }

    #[test]
    fn dtw_symmetry_and_identity(
        a in proptest::collection::vec(-10.0f64..10.0, 3..20),
        b in proptest::collection::vec(-10.0f64..10.0, 3..20),
    ) {
        let d_ab = shapesearch_similarity::dtw(&a, &b);
        let d_ba = shapesearch_similarity::dtw(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(shapesearch_similarity::dtw(&a, &a) < 1e-9);
        prop_assert!(d_ab >= 0.0);
    }
}
