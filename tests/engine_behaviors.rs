//! Engine-level behaviours: option interplay (parallel, pruning, push-down,
//! binning), OR fan-out fallbacks, built-in UDPs through the engine, and
//! determinism guarantees.

use shapesearch::prelude::*;
use shapesearch_core::{EngineOptions, Pattern, SegmenterKind, ShapeQuery};
use shapesearch_datastore::Trendline;

fn mixed_collection(n: usize) -> Vec<Trendline> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shapesearch::datagen::generators;
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|i| {
            let ys = match i % 4 {
                0 => generators::piecewise(&mut rng, 40, &[(1.0, 1.0), (1.0, -1.0)], 0.05),
                1 => generators::piecewise(&mut rng, 40, &[(1.0, -1.0), (1.0, 1.0)], 0.05),
                2 => generators::piecewise(&mut rng, 40, &[(1.0, 1.2)], 0.05),
                _ => generators::random_walk(&mut rng, 40, 0.0, 0.1),
            };
            Trendline::from_pairs(format!("v{i}"), &generators::with_index_x(&ys))
        })
        .collect()
}

#[test]
fn repeated_runs_are_identical() {
    let engine = ShapeEngine::from_trendlines(mixed_collection(24));
    let q = parse_regex("[p=up][p=down]").unwrap();
    let a = engine.top_k(&q, 8).unwrap();
    let b = engine.top_k(&q, 8).unwrap();
    assert_eq!(a, b);
}

#[test]
fn parallel_equals_sequential_on_every_segmenter() {
    let q = parse_regex("[p=up][p=down]").unwrap();
    for kind in [
        SegmenterKind::Dp,
        SegmenterKind::SegmentTree,
        SegmenterKind::Greedy,
        SegmenterKind::Dtw,
    ] {
        let seq = ShapeEngine::from_trendlines(mixed_collection(24)).with_options(EngineOptions {
            segmenter: kind,
            parallel: false,
            ..EngineOptions::default()
        });
        let par = ShapeEngine::from_trendlines(mixed_collection(24)).with_options(EngineOptions {
            segmenter: kind,
            parallel: true,
            ..EngineOptions::default()
        });
        assert_eq!(
            seq.top_k(&q, 6).unwrap(),
            par.top_k(&q, 6).unwrap(),
            "{kind:?}"
        );
    }
}

#[test]
fn wide_or_fanout_still_answers() {
    // 4 × 4 OR alternatives exceed the chain-expansion cap; the engine must
    // fall back to opaque evaluation and still return sound results.
    let or4 = "([p=up] | [p=down] | [p=flat] | [p=45])";
    let q = parse_regex(&format!("{or4}{or4}{or4}{or4}")).unwrap();
    let engine = ShapeEngine::from_trendlines(mixed_collection(16));
    let results = engine.top_k(&q, 4).unwrap();
    assert!(!results.is_empty());
    for r in &results {
        assert!((-1.0..=1.0).contains(&r.score));
    }
}

#[test]
fn builtin_udps_through_engine() {
    let mut engine = ShapeEngine::from_trendlines(mixed_collection(24));
    engine.register_builtin_udps();
    for name in ["concave", "convex", "v_shape", "spike", "entropy_low"] {
        let q = parse_regex(&format!("[p=udp:{name}]")).unwrap();
        let results = engine.top_k(&q, 3).unwrap();
        assert!(!results.is_empty(), "{name} returned nothing");
    }
    // v_shape should surface the down-up members (i % 4 == 1).
    let q = parse_regex("[p=udp:v_shape]").unwrap();
    let top = engine.top_k(&q, 1).unwrap();
    let idx: usize = top[0].key[1..].parse().unwrap();
    assert_eq!(idx % 4, 1, "top v_shape was {}", top[0].key);
}

#[test]
fn k_larger_than_collection_is_fine() {
    let engine = ShapeEngine::from_trendlines(mixed_collection(5));
    let q = parse_regex("[p=up]").unwrap();
    let results = engine.top_k(&q, 50).unwrap();
    assert_eq!(results.len(), 5);
    // k = 0 yields nothing.
    assert!(engine.top_k(&q, 0).unwrap().is_empty());
}

#[test]
fn empty_collection_yields_empty_results() {
    let engine = ShapeEngine::from_trendlines(Vec::new());
    let q = parse_regex("[p=up]").unwrap();
    assert!(engine.top_k(&q, 3).unwrap().is_empty());
}

#[test]
fn scores_are_monotone_in_rank() {
    let engine = ShapeEngine::from_trendlines(mixed_collection(32));
    for text in ["[p=up][p=down]", "[p=flat]", "[p=up] | [p=down]"] {
        let q = parse_regex(text).unwrap();
        let results = engine.top_k(&q, 10).unwrap();
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score, "{text}: {results:?}");
        }
    }
}

#[test]
fn nested_pattern_through_engine() {
    let engine = ShapeEngine::from_trendlines(mixed_collection(24));
    let q = ShapeQuery::pattern(Pattern::Nested(Box::new(ShapeQuery::concat(vec![
        ShapeQuery::up(),
        ShapeQuery::down(),
    ]))));
    let results = engine.top_k(&q, 4).unwrap();
    // Peak members (i % 4 == 0) should dominate.
    let peak_hits = results
        .iter()
        .take(2)
        .filter(|r| r.key[1..].parse::<usize>().unwrap() % 4 == 0)
        .count();
    assert!(peak_hits >= 1, "{results:?}");
}
