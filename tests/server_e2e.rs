//! End-to-end tests of the `shapesearch serve` subsystem: boot the
//! service on an ephemeral port, register a dataset over HTTP, and check
//! that (a) concurrent clients get exactly the in-process engine's
//! answers, (b) the result cache turns the second identical query into a
//! hit that is measurably faster than the cold run, and (c) the health
//! endpoint exposes the counters.

use shapesearch::prelude::*;
use shapesearch::server::{json, Client, ServerConfig};
use shapesearch_core::TopKResult;
use shapesearch_datastore::{csv, table_from_series, Table};

/// A deterministic synthetic market: enough series × points that a cold
/// tree-segmentation query takes real work, with varied shapes so top-k
/// is discriminative.
fn market_table() -> Table {
    let n_series = 48;
    let n_points = 240;
    let series: Vec<(String, Vec<(f64, f64)>)> = (0..n_series)
        .map(|s| {
            let phase = s as f64 * 0.37;
            let freq = 0.02 + (s % 7) as f64 * 0.013;
            let drift = ((s % 5) as f64 - 2.0) * 0.004;
            let points = (0..n_points)
                .map(|i| {
                    let t = i as f64;
                    let y = (t * freq + phase).sin() * 2.0 + (t * 0.005 + phase).cos() + drift * t;
                    (t, y)
                })
                .collect();
            (format!("series{s:02}"), points)
        })
        .collect();
    table_from_series("ticker", "day", "price", &series)
}

fn register_market(client: &Client) {
    register_market_sharded(client, None);
}

/// Registers the market dataset, optionally pinning an engine shard
/// count (None = the server's default).
fn register_market_sharded(client: &Client, shards: Option<usize>) {
    let table = market_table();
    let mut fields = vec![
        ("name".into(), "market".into()),
        ("id".into(), "market".into()),
        ("csv".into(), csv::write_str(&table).into()),
        ("z".into(), "ticker".into()),
        ("x".into(), "day".into()),
        ("y".into(), "price".into()),
    ];
    if let Some(shards) = shards {
        fields.push(("shards".into(), shards.into()));
    }
    let body = json::Json::Obj(fields);
    let reply = client
        .post("/datasets", &body)
        .unwrap()
        .expect_ok("register");
    assert_eq!(reply.get("trendlines").unwrap().as_usize(), Some(48));
    if let Some(shards) = shards {
        assert_eq!(reply.get("shards").unwrap().as_usize(), Some(shards));
    }
}

/// Decodes a `/query` response's `results` array into `TopKResult`s.
fn decode_results(reply: &json::Json) -> Vec<TopKResult> {
    reply
        .get("results")
        .and_then(json::Json::as_array)
        .expect("results array")
        .iter()
        .map(|r| TopKResult {
            key: r.get("key").unwrap().as_str().unwrap().to_owned(),
            score: r.get("score").unwrap().as_f64().unwrap(),
            viz_index: r.get("viz_index").unwrap().as_usize().unwrap(),
            ranges: r
                .get("ranges")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|pair| {
                    let pair = pair.as_array().unwrap();
                    (pair[0].as_usize().unwrap(), pair[1].as_usize().unwrap())
                })
                .collect(),
        })
        .collect()
}

fn query_body(query: &str, k: usize) -> json::Json {
    json::parse(&format!(
        r#"{{"dataset":"market","query":"{}","k":{k}}}"#,
        query.replace('\\', "\\\\").replace('"', "\\\"")
    ))
    .unwrap()
}

#[test]
fn concurrent_clients_match_in_process_engine_and_cache_accelerates() {
    let service = shapesearch::server::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = service.addr();
    let client = Client::new(addr);
    register_market(&client);

    // Listing shows the dataset.
    let listing = client.get("/datasets").unwrap().expect_ok("list");
    let datasets = listing.get("datasets").unwrap().as_array().unwrap();
    assert_eq!(datasets.len(), 1);
    assert_eq!(datasets[0].get("id").unwrap().as_str(), Some("market"));

    // In-process reference answers, computed from the same table.
    let table = market_table();
    let spec = VisualSpec::new("ticker", "day", "price");
    let engine = ShapeEngine::new(&table, &spec).unwrap();
    let queries = [
        ("[p=up][p=down]", 10),
        ("[p=down][p=up]", 7),
        ("[p=up][p=flat][p=down]", 5),
    ];
    let expected: Vec<Vec<TopKResult>> = queries
        .iter()
        .map(|(q, k)| engine.top_k(&parse_regex(q).unwrap(), *k).unwrap())
        .collect();

    // ≥4 concurrent clients, each issuing every query through HTTP.
    std::thread::scope(|scope| {
        for worker in 0..6 {
            let expected = &expected;
            let queries = &queries;
            scope.spawn(move || {
                let client = Client::new(addr);
                for ((q, k), want) in queries.iter().zip(expected) {
                    let reply = client
                        .post("/query", &query_body(q, *k))
                        .unwrap()
                        .expect_ok(&format!("worker {worker} query {q}"));
                    let got = decode_results(&reply);
                    assert_eq!(&got, want, "worker {worker} query {q} diverged");
                }
            });
        }
    });

    // Cold vs warm: a fresh query text (normalizes to a new AST) misses
    // once, then hits. Compare the server-reported service times; the
    // warm side takes the minimum of several runs so a scheduler
    // preemption under CI load can't fail the assertion spuriously (the
    // real margin is ~1000×: multi-ms segmentation vs a µs map lookup).
    let body = query_body("[p=up][p=down][p=up]", 9);
    let cold = client.post("/query", &body).unwrap().expect_ok("cold");
    assert_eq!(cold.get("cached").unwrap().as_bool(), Some(false));
    let cold_us = cold.get("micros").unwrap().as_f64().unwrap();
    let mut warm_us = f64::INFINITY;
    for _ in 0..3 {
        let warm = client.post("/query", &body).unwrap().expect_ok("warm");
        assert_eq!(warm.get("cached").unwrap().as_bool(), Some(true));
        warm_us = warm_us.min(warm.get("micros").unwrap().as_f64().unwrap());
        // The warm answer is byte-identical to the cold one.
        assert_eq!(decode_results(&cold), decode_results(&warm));
    }
    assert!(
        warm_us * 2.0 < cold_us,
        "cache hit should be measurably faster: cold {cold_us}µs vs warm {warm_us}µs"
    );

    // Whitespace variants of one query normalize onto the same entry.
    let variant = client
        .post(
            "/query",
            &query_body(" [ p = up ] [ p = down ] [ p = up ] ", 9),
        )
        .unwrap()
        .expect_ok("variant");
    assert_eq!(variant.get("cached").unwrap().as_bool(), Some(true));

    // Health counters saw all of it.
    let health = client.get("/healthz").unwrap().expect_ok("healthz");
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("datasets").unwrap().as_usize(), Some(1));
    let cache = health.get("cache").unwrap();
    let hits = cache.get("hits").unwrap().as_f64().unwrap();
    let misses = cache.get("misses").unwrap().as_f64().unwrap();
    let coalesced = cache.get("coalesced").unwrap().as_f64().unwrap();
    // 18 concurrent + 1 cold + 3 warm + 1 whitespace variant.
    let total_queries = health.get("queries").unwrap().as_f64().unwrap();
    assert_eq!(total_queries, 6.0 * 3.0 + 5.0);
    // Every lookup is counted exactly once.
    assert_eq!(
        hits + misses + coalesced,
        total_queries,
        "health: {}",
        health.to_text()
    );
    // 4 distinct keys were exercised. The singleflight latch makes the
    // miss count *exact*: racing threads that used to all miss before the
    // first insert landed now coalesce onto the leader, so each key
    // misses exactly once no matter the interleaving.
    assert_eq!(misses, 4.0, "health: {}", health.to_text());
    assert_eq!(cache.get("entries").unwrap().as_usize(), Some(4));
    // The cached-variant checks above prove hits occurred.
    assert!(hits >= 2.0, "health: {}", health.to_text());

    service.shutdown();
}

#[test]
fn nl_queries_work_over_http_and_share_cache_with_regex() {
    let service = shapesearch::server::serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(service.addr());
    register_market(&client);

    let nl = json::parse(r#"{"dataset":"market","nl":"rising then falling","k":4}"#).unwrap();
    let reply = client.post("/query", &nl).unwrap().expect_ok("nl");
    let canonical = reply.get("query").unwrap().as_str().unwrap().to_owned();
    assert!(!decode_results(&reply).is_empty());

    // Re-issuing the *canonical regex* of the NL query hits the cache:
    // both front-ends share one normalized AST keyspace.
    let as_regex = client
        .post("/query", &query_body(&canonical, 4))
        .unwrap()
        .expect_ok("canonical regex");
    assert_eq!(as_regex.get("cached").unwrap().as_bool(), Some(true));

    service.shutdown();
}

/// The stampede fix end to end: N clients fire the *identical cold* query
/// concurrently. The singleflight latch must elect exactly one leader (one
/// cache miss → one engine computation); everyone else coalesces onto the
/// leader's flight (or hits, if they arrive after it lands) and receives
/// byte-identical results.
#[test]
fn concurrent_identical_cold_misses_compute_exactly_once() {
    let service = shapesearch::server::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = service.addr();
    register_market(&Client::new(addr));

    let n = 6u64;
    let bodies: Vec<json::Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|worker| {
                scope.spawn(move || {
                    Client::new(addr)
                        .post("/query", &query_body("[p=up][p=down][p=up][p=down]", 8))
                        .unwrap()
                        .expect_ok(&format!("stampede worker {worker}"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let reference = decode_results(&bodies[0]);
    assert!(!reference.is_empty());
    for body in &bodies {
        assert_eq!(decode_results(body), reference, "divergent stampede result");
    }

    let health = Client::new(addr)
        .get("/healthz")
        .unwrap()
        .expect_ok("healthz");
    let cache = health.get("cache").unwrap();
    let misses = cache.get("misses").unwrap().as_f64().unwrap();
    let hits = cache.get("hits").unwrap().as_f64().unwrap();
    let coalesced = cache.get("coalesced").unwrap().as_f64().unwrap();
    assert_eq!(
        misses,
        1.0,
        "exactly one engine computation: {}",
        health.to_text()
    );
    assert_eq!(
        hits + coalesced,
        (n - 1) as f64,
        "everyone else shared it: {}",
        health.to_text()
    );

    service.shutdown();
}

/// Ten distinct cold queries, per-item. Used both as the sequential
/// reference and as the batch payload.
fn bench_queries() -> Vec<(String, usize)> {
    [
        "[p=up][p=down]",
        "[p=down][p=up]",
        "[p=up][p=flat]",
        "[p=flat][p=up]",
        "[p=down][p=flat]",
        "[p=flat][p=down]",
        "[p=up][p=down][p=up]",
        "[p=down][p=up][p=down]",
        "[p=up][p=flat][p=down]",
        "[p=down][p=flat][p=up]",
    ]
    .iter()
    .enumerate()
    .map(|(i, q)| (q.to_string(), 3 + i % 5))
    .collect()
}

fn batch_item(query: &str, k: usize) -> json::Json {
    json::parse(&format!(
        r#"{{"dataset":"market","query":"{query}","k":{k}}}"#
    ))
    .unwrap()
}

/// A bench item with a binning width: GROUP still walks every raw point,
/// while segmentation runs over the (much shorter) binned canvas — the
/// per-query profile where the batch's shared GROUP pass pays off most.
fn binned_item(query: &str, k: usize) -> json::Json {
    json::parse(&format!(
        r#"{{"dataset":"market","query":"{query}","k":{k},"bin_width":8}}"#
    ))
    .unwrap()
}

/// Batched execution end to end: a 10-query batch returns exactly the
/// per-query answers of 10 sequential requests, and pays one HTTP round
/// trip instead of ten. (The batch used to also amortize GROUP; the
/// engine's columnar arena cache now amortizes GROUP across *all*
/// requests, sequential included, so the wall-clock gap is just the HTTP
/// overhead — the timing check below only guards against the batch path
/// regressing to meaningfully slower than sequential.)
#[test]
fn batch_matches_sequential_and_not_slower() {
    let service = shapesearch::server::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = service.addr();
    let client = Client::new(addr);
    register_market(&client);
    let queries = bench_queries();

    // --- Correctness: sequential cold answers are the reference.
    let sequential: Vec<Vec<TopKResult>> = queries
        .iter()
        .map(|(q, k)| {
            let reply = client
                .post("/query", &query_body(q, *k))
                .unwrap()
                .expect_ok(&format!("sequential {q}"));
            assert_eq!(reply.get("cached").unwrap().as_bool(), Some(false));
            decode_results(&reply)
        })
        .collect();

    // Re-register the dataset (bumps the generation, emptying the cached
    // keyspace) so the batch also runs cold — then every item must still
    // agree with the sequential reference, computed this time through the
    // shared-GROUP batched engine path.
    register_market(&client);
    let reply = client
        .query_batch(queries.iter().map(|(q, k)| batch_item(q, *k)).collect())
        .unwrap()
        .expect_ok("batch");
    assert_eq!(reply.get("batch").unwrap().as_usize(), Some(queries.len()));
    let responses = reply.get("responses").unwrap().as_array().unwrap();
    assert_eq!(responses.len(), queries.len());
    for (item, want) in responses.iter().zip(&sequential) {
        assert_eq!(item.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(
            &decode_results(item),
            want,
            "batch diverged from sequential"
        );
    }

    // --- Wall clock: cold batch vs cold sequential, best of 3 rounds
    // each (re-registering between rounds re-colds the result cache and
    // the engine's arena cache; min-of-N absorbs scheduler noise under CI
    // load). Both paths GROUP once per round — sequential warms the
    // engine's arena cache on its first request — so near-parity is
    // expected; the batch must just never be meaningfully slower.
    let mut best_sequential = std::time::Duration::MAX;
    let mut best_batch = std::time::Duration::MAX;
    for _ in 0..3 {
        register_market(&client);
        let started = std::time::Instant::now();
        for (q, k) in &queries {
            client
                .post("/query", &binned_item(q, *k))
                .unwrap()
                .expect_ok("timed sequential");
        }
        best_sequential = best_sequential.min(started.elapsed());

        register_market(&client);
        let started = std::time::Instant::now();
        client
            .query_batch(queries.iter().map(|(q, k)| binned_item(q, *k)).collect())
            .unwrap()
            .expect_ok("timed batch");
        best_batch = best_batch.min(started.elapsed());
    }
    assert!(
        best_batch < best_sequential + best_sequential / 2,
        "a 10-query batch should not be meaningfully slower than 10 sequential requests: batch {best_batch:?} vs sequential {best_sequential:?}"
    );

    service.shutdown();
}

/// Sharded execution end to end: a server whose datasets default to 4
/// engine shards (fanned per query across the compute pool) returns
/// exactly the answers of the unsharded in-process engine, and the
/// envelope + health endpoint report the shard structure.
#[test]
fn sharded_server_matches_in_process_engine() {
    let service = shapesearch::server::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            shards: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let client = Client::new(service.addr());
    register_market(&client);

    // The default shard count applied: the registration got 4 shards.
    let listing = client.get("/datasets").unwrap().expect_ok("list");
    let datasets = listing.get("datasets").unwrap().as_array().unwrap();
    assert_eq!(datasets[0].get("shards").unwrap().as_usize(), Some(4));

    // Reference: the plain unsharded engine over the same table.
    let table = market_table();
    let spec = VisualSpec::new("ticker", "day", "price");
    let engine = ShapeEngine::new(&table, &spec).unwrap();
    for (q, k) in [("[p=up][p=down]", 10), ("[p=down][p=flat][p=up]", 48)] {
        let want = engine.top_k(&parse_regex(q).unwrap(), k).unwrap();
        let reply = client
            .post("/query", &query_body(q, k))
            .unwrap()
            .expect_ok(&format!("sharded {q}"));
        assert_eq!(decode_results(&reply), want, "sharded run diverged on {q}");
        assert_eq!(reply.get("shards").unwrap().as_usize(), Some(4));
        assert_eq!(
            reply
                .get("shard_micros")
                .expect("cold responses carry per-shard timings")
                .as_array()
                .unwrap()
                .len(),
            4
        );
    }

    // Health reports the shard gauges consistently.
    let health = client.get("/healthz").unwrap().expect_ok("healthz");
    let shards = health.get("shards").unwrap();
    assert_eq!(shards.get("default").unwrap().as_usize(), Some(4));
    assert_eq!(shards.get("dataset_shards").unwrap().as_usize(), Some(4));
    assert!(shards.get("tasks").unwrap().as_usize().unwrap() >= 8);
    let cache = health.get("cache").unwrap();
    assert_eq!(
        cache.get("lookups").unwrap().as_usize().unwrap(),
        cache.get("hits").unwrap().as_usize().unwrap()
            + cache.get("misses").unwrap().as_usize().unwrap()
            + cache.get("coalesced").unwrap().as_usize().unwrap()
    );

    service.shutdown();
}

/// Re-registering a dataset under a new shard count must invalidate its
/// cached results (the key carries generation *and* shard count), while
/// the recomputed answers stay identical — sharding never changes
/// results.
#[test]
fn reregistration_under_new_shard_count_invalidates_cache() {
    let service = shapesearch::server::serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(service.addr());
    register_market_sharded(&client, Some(1));

    let body = query_body("[p=up][p=down]", 6);
    let cold = client.post("/query", &body).unwrap().expect_ok("cold");
    assert_eq!(cold.get("cached").unwrap().as_bool(), Some(false));
    let warm = client.post("/query", &body).unwrap().expect_ok("warm");
    assert_eq!(warm.get("cached").unwrap().as_bool(), Some(true));

    register_market_sharded(&client, Some(3));
    let fresh = client.post("/query", &body).unwrap().expect_ok("fresh");
    assert_eq!(
        fresh.get("cached").unwrap().as_bool(),
        Some(false),
        "new shard layout must recompute, not serve the old entry"
    );
    assert_eq!(fresh.get("shards").unwrap().as_usize(), Some(3));
    assert_eq!(
        decode_results(&fresh),
        decode_results(&cold),
        "resharding must not change answers"
    );

    service.shutdown();
}

#[test]
fn errors_surface_with_proper_statuses() {
    let service = shapesearch::server::serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = Client::new(service.addr());

    let miss = client
        .post(
            "/query",
            &json::parse(r#"{"dataset":"ghost","query":"[p=up]"}"#).unwrap(),
        )
        .unwrap();
    assert_eq!(miss.status, 404);

    let bad = client
        .post(
            "/datasets",
            &json::parse(r#"{"name":"x","csv":"a,b\n1,2\n","z":"nope","x":"a","y":"b"}"#).unwrap(),
        )
        .unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.get("error").is_some());

    service.shutdown();
}
