//! End-to-end tests of **multi-machine sharding**: real `shapesearch`
//! services wired into a distributed topology over loopback HTTP — shard
//! servers owning one partition each (`shard_of`), a router whose
//! catalog maps shards to `Local` engines or `Remote` endpoints, and the
//! deterministic merge on top.
//!
//! The headline invariant extends PR 3's: distributed execution is
//! **byte-identical** to a single-process run — scores, tie order, and
//! fitted `ranges` — for every placement {all-local, all-remote, mixed}
//! × shard count {1, 2, 4}. The failure-path tests pin the degraded
//! behavior: an unreachable shard is a structured `shard_unavailable`
//! error naming the endpoint (never a hang, never a silent partial
//! top-k), and a restored shard serves again — cacheably — without any
//! re-registration.

use shapesearch::server::{json, Client, ServerConfig, Service};
use shapesearch_datastore::{csv, table_from_series, Table};

/// A deterministic collection with mixed shapes and **exact duplicate
/// trendlines** (every fourth series repeats one peak shape), so the
/// top-k contains real score ties that straddle shard boundaries — the
/// tie-order half of the byte-identity claim is exercised, not vacuous.
fn market_table() -> Table {
    let n_series = 12;
    let n_points = 80;
    let series: Vec<(String, Vec<(f64, f64)>)> = (0..n_series)
        .map(|s| {
            let points: Vec<(f64, f64)> = (0..n_points)
                .map(|i| {
                    let t = i as f64;
                    let y = if s % 4 == 3 {
                        // Exact duplicates of one peak: tied scores.
                        if t < 40.0 {
                            t
                        } else {
                            80.0 - t
                        }
                    } else {
                        let phase = s as f64 * 0.61;
                        let freq = 0.05 + (s % 5) as f64 * 0.021;
                        (t * freq + phase).sin() * 2.0 + ((s % 3) as f64 - 1.0) * 0.01 * t
                    };
                    (t, y)
                })
                .collect();
            (format!("series{s:02}"), points)
        })
        .collect();
    table_from_series("ticker", "day", "price", &series)
}

fn boot() -> Service {
    shapesearch::server::serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Registers `market_table` on a service over HTTP, with optional
/// extras spliced into the registration object (`"shard_of": …`,
/// `"shard_endpoints": …`, `"shards": …`).
fn register(client: &Client, extras: Vec<(String, json::Json)>) -> json::Json {
    let mut fields = vec![
        ("name".into(), "market".into()),
        ("id".into(), "market".into()),
        ("csv".into(), csv::write_str(&market_table()).into()),
        ("z".into(), "ticker".into()),
        ("x".into(), "day".into()),
        ("y".into(), "price".into()),
    ];
    fields.extend(extras);
    client
        .post("/datasets", &json::Json::Obj(fields))
        .unwrap()
        .expect_ok("register")
}

fn endpoints_json(placement: &[Option<String>]) -> json::Json {
    json::Json::Arr(
        placement
            .iter()
            .map(|ep| match ep {
                Some(endpoint) => json::Json::Str(endpoint.clone()),
                None => json::Json::Null,
            })
            .collect(),
    )
}

fn query_body(query: &str, k: usize) -> json::Json {
    json::parse(&format!(
        r#"{{"dataset":"market","query":"{query}","k":{k}}}"#
    ))
    .unwrap()
}

/// The acceptance matrix: placements {all-local, all-remote, mixed} ×
/// shard counts {1, 2, 4}, each compared byte-for-byte against the
/// single-process single-shard reference.
#[test]
fn every_placement_and_shard_count_is_byte_identical_to_single_process() {
    // Reference: one process, one shard.
    let reference_service = boot();
    let reference_client = Client::new(reference_service.addr());
    register(&reference_client, vec![("shards".into(), 1usize.into())]);
    let queries = [
        ("[p=up][p=down]", 12),
        ("[p=down][p=up]", 5),
        ("[p=up][p=flat][p=down]", 7),
    ];
    let reference: Vec<String> = queries
        .iter()
        .map(|(q, k)| {
            let reply = reference_client
                .post("/query", &query_body(q, *k))
                .unwrap()
                .expect_ok(&format!("reference {q}"));
            let results = reply.get("results").unwrap();
            // The duplicate series really do tie in the top-k, in
            // ascending global order — otherwise the tie-order half of
            // the byte-identity claim would be vacuous.
            if *q == "[p=up][p=down]" {
                // The duplicated series sit at global indices 3, 7, 11.
                let dup_indices: Vec<usize> = results
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|r| r.get("viz_index").unwrap().as_usize().unwrap())
                    .filter(|i| i % 4 == 3)
                    .collect();
                assert!(dup_indices.len() >= 3, "expected tied duplicates in top-k");
                assert!(dup_indices.windows(2).all(|w| w[0] < w[1]));
            }
            results.to_text()
        })
        .collect();

    let router_service = boot();
    let router = Client::new(router_service.addr());

    for shards in [1usize, 2, 4] {
        // One shard server per partition, each registering "market" as
        // shard i of `shards` over plain HTTP.
        let shard_services: Vec<Service> = (0..shards).map(|_| boot()).collect();
        let endpoints: Vec<String> = shard_services
            .iter()
            .map(|s| s.addr().to_string())
            .collect();
        for (i, service) in shard_services.iter().enumerate() {
            let reply = register(
                &Client::new(service.addr()),
                vec![("shard_of".into(), format!("{i}/{shards}").into())],
            );
            assert_eq!(
                reply.get("shard_of").unwrap().as_str(),
                Some(format!("{i}/{shards}").as_str())
            );
        }

        let placements: Vec<(&str, Vec<Option<String>>)> = vec![
            ("all-local", vec![None; shards]),
            ("all-remote", endpoints.iter().cloned().map(Some).collect()),
            (
                "mixed",
                endpoints
                    .iter()
                    .enumerate()
                    .map(|(i, ep)| if i % 2 == 0 { Some(ep.clone()) } else { None })
                    .collect(),
            ),
        ];
        for (label, placement) in placements {
            let remote_count = placement.iter().flatten().count();
            let reply = register(
                &router,
                vec![("shard_endpoints".into(), endpoints_json(&placement))],
            );
            assert_eq!(reply.get("shards").unwrap().as_usize(), Some(shards));

            for ((q, k), want) in queries.iter().zip(&reference) {
                let reply = router
                    .post("/query", &query_body(q, *k))
                    .unwrap()
                    .expect_ok(&format!("{label} shards={shards} {q}"));
                assert_eq!(reply.get("cached").unwrap().as_bool(), Some(false));
                assert_eq!(reply.get("shards").unwrap().as_usize(), Some(shards));
                assert_eq!(
                    &reply.get("results").unwrap().to_text(),
                    want,
                    "{label} shards={shards} diverged on {q}"
                );
                // Batches route through the same fan-out; spot-check one.
                let batch = router
                    .query_batch(vec![query_body(q, *k)])
                    .unwrap()
                    .expect_ok("batch");
                let responses = batch.get("responses").unwrap().as_array().unwrap();
                assert_eq!(&responses[0].get("results").unwrap().to_text(), want);
            }

            // The router's healthz names every remote endpoint in play.
            if remote_count > 0 {
                let health = router.get("/healthz").unwrap().expect_ok("healthz");
                let remote = health.get("remote_shards").unwrap();
                assert!(
                    remote.get("endpoints").unwrap().as_usize().unwrap() >= remote_count,
                    "{}",
                    health.to_text()
                );
                assert_eq!(remote.get("errors").unwrap().as_usize(), Some(0));
            }
        }
        for service in shard_services {
            service.shutdown();
        }
    }

    router_service.shutdown();
    reference_service.shutdown();
}

/// §6.3 pruning across the distributed topology: `"pruning":"off"` and
/// the default (`auto`) must be byte-identical over a mixed placement,
/// and the healthz `pruning` gauges must show the bound path really ran
/// on both the router's local shard and the remote shard server.
#[test]
fn pruning_modes_are_byte_identical_across_a_mixed_topology() {
    // A shard server owning partition 0 of 2; shard 1 stays local on the
    // router.
    let shard_service = boot();
    register(
        &Client::new(shard_service.addr()),
        vec![("shard_of".into(), "0/2".into())],
    );
    let router_service = boot();
    let router = Client::new(router_service.addr());
    let placement = vec![Some(shard_service.addr().to_string()), None];

    let queries = [("[p=up][p=down]", 3), ("[p=down][p=up]", 2)];
    for (q, k) in queries {
        // Cold pass with pruning off…
        register(
            &router,
            vec![("shard_endpoints".into(), endpoints_json(&placement))],
        );
        let body = json::parse(&format!(
            r#"{{"dataset":"market","query":"{q}","k":{k},"pruning":"off"}}"#
        ))
        .unwrap();
        let off = router.post("/query", &body).unwrap().expect_ok("off");
        assert_eq!(off.get("cached").unwrap().as_bool(), Some(false));

        // …re-register (generation bump clears the cache), cold pass
        // under the default mode, byte-identical results.
        register(
            &router,
            vec![("shard_endpoints".into(), endpoints_json(&placement))],
        );
        let auto = router
            .post("/query", &query_body(q, k))
            .unwrap()
            .expect_ok("auto");
        assert_eq!(auto.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(
            auto.get("results").unwrap().to_text(),
            off.get("results").unwrap().to_text(),
            "pruning off vs default diverged on {q}"
        );
    }

    // The bound path really ran: the router's local shard computed
    // bounds and scored survivors, and so did the remote shard server.
    for (who, client) in [
        ("router", &router),
        ("shard server", &Client::new(shard_service.addr())),
    ] {
        let health = client.get("/healthz").unwrap().expect_ok("healthz");
        let pruning = health.get("pruning").unwrap();
        assert!(
            pruning.get("scored").unwrap().as_usize().unwrap() > 0,
            "{who} never scored under the driver: {}",
            health.to_text()
        );
        assert!(
            pruning.get("bounded").unwrap().as_usize().unwrap() > 0,
            "{who} never computed a bound: {}",
            health.to_text()
        );
    }

    router_service.shutdown();
    shard_service.shutdown();
}

/// Failure handling end to end: a placement naming a dead port degrades
/// to a structured `shard_unavailable` error (no hang, no silent
/// partial top-k), and once a shard server comes up on that same
/// endpoint the *same registration* serves again — and its results are
/// cacheable.
#[test]
fn dead_shard_degrades_structurally_and_recovers_cacheably() {
    // Reserve a port, then leave it dead.
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let endpoint = reserved.local_addr().unwrap().to_string();
    drop(reserved);

    let router_service = boot();
    let router = Client::new(router_service.addr());
    register(
        &router,
        vec![(
            "shard_endpoints".into(),
            endpoints_json(&[None, Some(endpoint.clone())]),
        )],
    );

    // Query against the dead endpoint: a prompt, structured 502.
    let started = std::time::Instant::now();
    let reply = router
        .post("/query", &query_body("[p=up][p=down]", 6))
        .unwrap();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "dead shard must fail fast, not hang: {:?}",
        started.elapsed()
    );
    assert_eq!(reply.status, 502, "{}", reply.body.to_text());
    assert_eq!(
        reply.body.get("code").unwrap().as_str(),
        Some("shard_unavailable")
    );
    assert!(
        reply
            .body
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains(&endpoint),
        "the error must name the endpoint: {}",
        reply.body.to_text()
    );
    // The router tallied the failure against that endpoint.
    let health = router.get("/healthz").unwrap().expect_ok("healthz");
    let remote = health.get("remote_shards").unwrap();
    assert!(remote.get("errors").unwrap().as_usize().unwrap() >= 1);

    // Restore the shard on the very endpoint the placement names.
    let shard_service = shapesearch::server::serve(
        &endpoint,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    register(
        &Client::new(shard_service.addr()),
        vec![("shard_of".into(), "1/2".into())],
    );

    // Same registration, same query: healthy now, and byte-identical to
    // an all-local run.
    let healthy = router
        .post("/query", &query_body("[p=up][p=down]", 6))
        .unwrap()
        .expect_ok("restored");
    assert_eq!(healthy.get("cached").unwrap().as_bool(), Some(false));

    let reference_service = boot();
    let reference = Client::new(reference_service.addr());
    register(&reference, vec![("shards".into(), 2usize.into())]);
    let want = reference
        .post("/query", &query_body("[p=up][p=down]", 6))
        .unwrap()
        .expect_ok("reference");
    assert_eq!(
        healthy.get("results").unwrap().to_text(),
        want.get("results").unwrap().to_text()
    );

    // The recovered result is cacheable: the earlier failure neither
    // cached garbage nor poisoned the key.
    let warm = router
        .post("/query", &query_body("[p=up][p=down]", 6))
        .unwrap()
        .expect_ok("warm");
    assert_eq!(warm.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(
        warm.get("results").unwrap().to_text(),
        healthy.get("results").unwrap().to_text()
    );

    shard_service.shutdown();
    reference_service.shutdown();
    router_service.shutdown();
}

// ---------------------------------------------------------------------
// Observability across the topology: trace propagation and /metrics.
// ---------------------------------------------------------------------

/// Depth-first collection of every span named `name` in a trace's span
/// forest (spans are wire JSON: `{"name", "detail"?, "micros", "spans"?}`).
fn spans_named<'a>(span: &'a json::Json, name: &str, out: &mut Vec<&'a json::Json>) {
    if span.get("name").and_then(json::Json::as_str) == Some(name) {
        out.push(span);
    }
    if let Some(children) = span.get("spans").and_then(json::Json::as_array) {
        for child in children {
            spans_named(child, name, out);
        }
    }
}

fn find_spans<'a>(trace: &'a json::Json, name: &str) -> Vec<&'a json::Json> {
    let mut out = Vec::new();
    for root in trace.get("spans").unwrap().as_array().unwrap() {
        spans_named(root, name, &mut out);
    }
    out
}

/// One counter/count sample's value out of a Prometheus text exposition,
/// matched on the exact `name{labels}` prefix.
fn metric_value(text: &str, series: &str) -> Option<u64> {
    text.lines()
        .find(|l| {
            l.strip_prefix(series)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Satellite: the router's trace ID rides the `/shard/query` wire, and
/// each live shard *server* echoes it back over its own span tree — the
/// stitched trace proves cross-process propagation, not just local
/// bookkeeping.
#[test]
fn explain_traces_propagate_to_live_remote_shard_servers() {
    let shard_services: Vec<Service> = (0..2).map(|_| boot()).collect();
    let endpoints: Vec<Option<String>> = shard_services
        .iter()
        .map(|s| Some(s.addr().to_string()))
        .collect();
    for (i, service) in shard_services.iter().enumerate() {
        register(
            &Client::new(service.addr()),
            vec![("shard_of".into(), format!("{i}/2").into())],
        );
    }
    let router_service = boot();
    let router = Client::new(router_service.addr());
    register(
        &router,
        vec![("shard_endpoints".into(), endpoints_json(&endpoints))],
    );

    // An untraced query stays untraced: no `trace` key, and (because the
    // shard RPC then carries no trace_id) nothing extra on the wire.
    let plain = router
        .post("/query", &query_body("[p=down][p=up]", 3))
        .unwrap()
        .expect_ok("plain");
    assert!(plain.get("trace").is_none(), "{}", plain.to_text());

    let body = json::parse(r#"{"dataset":"market","query":"[p=up][p=down]","k":4,"explain":true}"#)
        .unwrap();
    let reply = router.post("/query", &body).unwrap().expect_ok("explain");
    let trace = reply
        .get("trace")
        .unwrap_or_else(|| panic!("explain:true must return a trace: {}", reply.to_text()));
    let trace_id = trace.get("trace_id").unwrap().as_str().unwrap().to_owned();
    assert_eq!(trace_id.len(), 16, "trace_id {trace_id:?}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));

    // One root: the request span, tagged with the same trace ID.
    let roots = trace.get("spans").unwrap().as_array().unwrap();
    assert_eq!(roots.len(), 1);
    assert_eq!(
        roots[0].get("name").unwrap().as_str(),
        Some("request"),
        "{}",
        trace.to_text()
    );
    assert!(roots[0]
        .get("detail")
        .unwrap()
        .as_str()
        .unwrap()
        .contains(&trace_id));

    // Both remote slots appear, and under each RPC span sits the shard
    // *server's* own reply tree, echoing the router's trace ID — the
    // ID crossed process boundaries and came back.
    let rpcs = find_spans(trace, "remote_rpc");
    assert_eq!(rpcs.len(), 2, "{}", trace.to_text());
    for rpc in &rpcs {
        let mut echoes = Vec::new();
        spans_named(rpc, "shard_request", &mut echoes);
        assert_eq!(echoes.len(), 1, "{}", rpc.to_text());
        assert!(
            echoes[0]
                .get("detail")
                .unwrap()
                .as_str()
                .unwrap()
                .contains(&trace_id),
            "remote span must echo the router's trace ID: {}",
            rpc.to_text()
        );
        // …and carries the remote server's own engine timing.
        let mut computes = Vec::new();
        spans_named(rpc, "shard_compute", &mut computes);
        assert!(!computes.is_empty(), "{}", rpc.to_text());
    }

    for service in shard_services {
        service.shutdown();
    }
    router_service.shutdown();
}

/// The acceptance path: an `explain:true` query over a **mixed
/// local/remote 4-shard topology** returns one stitched span tree with a
/// span for every shard — the remote ones carrying the shard servers'
/// own timings — and the router's `/metrics` exposition reconciles with
/// its healthz totals.
#[test]
fn explain_spans_cover_a_mixed_four_shard_topology_and_metrics_reconcile() {
    // Shards 0 and 2 on live shard servers; 1 and 3 local to the router.
    let shard_services: Vec<Service> = (0..2).map(|_| boot()).collect();
    for (i, service) in shard_services.iter().enumerate() {
        register(
            &Client::new(service.addr()),
            vec![("shard_of".into(), format!("{}/4", i * 2).into())],
        );
    }
    let placement = vec![
        Some(shard_services[0].addr().to_string()),
        None,
        Some(shard_services[1].addr().to_string()),
        None,
    ];
    let router_service = boot();
    let router = Client::new(router_service.addr());
    register(
        &router,
        vec![("shard_endpoints".into(), endpoints_json(&placement))],
    );

    let body = json::parse(r#"{"dataset":"market","query":"[p=up][p=down]","k":6,"explain":true}"#)
        .unwrap();
    let reply = router.post("/query", &body).unwrap().expect_ok("explain");
    let trace = reply
        .get("trace")
        .expect("explain:true must return a trace");

    // One span per shard slot: local slots as shard_compute, remote
    // slots as remote_rpc — each of the latter stitching in the shard
    // server's own tree (its shard_request root and its engine-side
    // shard_compute timing).
    let fanout = find_spans(trace, "shard_fanout");
    assert_eq!(fanout.len(), 1, "{}", trace.to_text());
    let slots = fanout[0].get("spans").unwrap().as_array().unwrap();
    let slot_names: Vec<&str> = slots
        .iter()
        .filter_map(|s| s.get("name").and_then(json::Json::as_str))
        .collect();
    assert_eq!(
        slot_names,
        [
            "remote_rpc",
            "shard_compute",
            "remote_rpc",
            "shard_compute",
            "merge"
        ],
        "{}",
        trace.to_text()
    );
    for rpc in find_spans(trace, "remote_rpc") {
        let mut remote_computes = Vec::new();
        spans_named(rpc, "shard_compute", &mut remote_computes);
        assert!(
            !remote_computes.is_empty(),
            "remote slot must carry the shard server's own timings: {}",
            rpc.to_text()
        );
        for span in remote_computes {
            assert!(span.get("micros").unwrap().as_usize().is_some());
        }
    }

    // A couple more queries (one repeated: a cache hit) so the counters
    // have texture, then reconcile /metrics against healthz.
    router
        .post("/query", &query_body("[p=down][p=up]", 2))
        .unwrap()
        .expect_ok("warm-up");
    let hit = router.post("/query", &body).unwrap().expect_ok("hit");
    assert_eq!(hit.get("cached").unwrap().as_bool(), Some(true));

    let health = router.get("/healthz").unwrap().expect_ok("healthz");
    let (status, text) = router.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(!text.is_empty());

    let want_queries = health.get("queries").unwrap().as_usize().unwrap() as u64;
    assert_eq!(
        metric_value(&text, "shapesearch_queries_total"),
        Some(want_queries),
        "{text}"
    );
    let cache = health.get("cache").unwrap();
    for (event, field) in [
        ("hit", "hits"),
        ("miss", "misses"),
        ("coalesced", "coalesced"),
    ] {
        assert_eq!(
            metric_value(
                &text,
                &format!("shapesearch_cache_events_total{{event=\"{event}\"}}")
            ),
            Some(cache.get(field).unwrap().as_usize().unwrap() as u64),
            "{text}"
        );
    }
    assert_eq!(
        metric_value(&text, "shapesearch_cache_lookups_total"),
        Some(cache.get("lookups").unwrap().as_usize().unwrap() as u64),
    );
    assert_eq!(
        metric_value(&text, "shapesearch_shard_tasks_total"),
        Some(
            health
                .get("shards")
                .unwrap()
                .get("tasks")
                .unwrap()
                .as_usize()
                .unwrap() as u64
        ),
    );
    // Every HTTP request landed in the request histogram, and the hot
    // stages all saw samples.
    assert_eq!(
        metric_value(&text, "shapesearch_request_duration_micros_count"),
        Some(want_queries),
        "{text}"
    );
    for stage in [
        "parse_plan",
        "cache_lookup",
        "shard_compute",
        "merge",
        "serialize",
    ] {
        let count = metric_value(
            &text,
            &format!("shapesearch_stage_duration_micros_count{{stage=\"{stage}\"}}"),
        );
        assert!(count.unwrap_or(0) > 0, "stage {stage} unsampled:\n{text}");
    }
    // Remote RPC latencies are tracked per endpoint.
    let remote_rpc_count: u64 = placement
        .iter()
        .flatten()
        .filter_map(|ep| {
            metric_value(
                &text,
                &format!("shapesearch_remote_rpc_duration_micros_count{{endpoint=\"{ep}\"}}"),
            )
        })
        .sum();
    assert!(remote_rpc_count >= 2, "{text}");

    // The evented listener's connection gauges tell one story across
    // /healthz and /metrics. The test client opens one
    // `connection: close` socket per request, so by the time any handler
    // runs, every earlier connection is already torn down: `active` is
    // exactly the connection carrying the request, `accepted_total`
    // advances by exactly one between the healthz and metrics fetches
    // (the metrics connection itself), and nothing ever idles in
    // keep-alive or times out.
    let conns = health.get("connections").unwrap();
    let conn_field = |field: &str| conns.get(field).unwrap().as_usize().unwrap() as u64;
    assert_eq!(conn_field("active"), 1, "{}", health.to_text());
    assert_eq!(conn_field("idle_keepalive"), 0, "{}", health.to_text());
    assert_eq!(conn_field("timeouts"), 0, "{}", health.to_text());
    assert!(conn_field("accepted_total") >= 5, "{}", health.to_text());
    assert!(conn_field("event_loop_wakeups") > 0, "{}", health.to_text());
    assert_eq!(
        metric_value(&text, "shapesearch_connections_active"),
        Some(1)
    );
    assert_eq!(
        metric_value(&text, "shapesearch_connections_idle_keepalive"),
        Some(0)
    );
    assert_eq!(
        metric_value(&text, "shapesearch_connections_timeouts_total"),
        Some(0)
    );
    assert_eq!(
        metric_value(&text, "shapesearch_connections_accepted_total"),
        Some(conn_field("accepted_total") + 1),
        "metrics must count exactly one more accept — its own connection:\n{text}"
    );
    assert!(
        metric_value(&text, "shapesearch_connections_event_loop_wakeups_total")
            .is_some_and(|w| w >= conn_field("event_loop_wakeups")),
        "{text}"
    );
    // The snapshot byte gauges are exposed on both surfaces too (zero
    // here: no snapshot datasets in this topology).
    let snapshots = health.get("snapshots").unwrap();
    assert_eq!(snapshots.get("resident_bytes").unwrap().as_usize(), Some(0));
    assert_eq!(snapshots.get("capacity_bytes").unwrap().as_usize(), Some(0));
    assert_eq!(
        metric_value(&text, "shapesearch_snapshot_resident_bytes"),
        Some(0)
    );
    assert_eq!(
        metric_value(&text, "shapesearch_snapshot_resident_capacity_bytes"),
        Some(0)
    );

    // And each shard server's own exposition counts the RPCs it served.
    for service in &shard_services {
        let shard_health = Client::new(service.addr())
            .get("/healthz")
            .unwrap()
            .expect_ok("shard healthz");
        let (status, shard_text) = Client::new(service.addr()).get_text("/metrics").unwrap();
        assert_eq!(status, 200);
        let served = shard_health
            .get("shards")
            .unwrap()
            .get("shard_queries")
            .unwrap()
            .as_usize()
            .unwrap() as u64;
        assert!(served >= 1);
        assert_eq!(
            metric_value(&shard_text, "shapesearch_shard_queries_total"),
            Some(served),
        );
        assert_eq!(
            metric_value(
                &shard_text,
                "shapesearch_shard_request_duration_micros_count"
            ),
            Some(served),
        );
    }

    for service in shard_services {
        service.shutdown();
    }
    router_service.shutdown();
}
