//! The paper's §8 genomics case study, reproduced on synthetic gene
//! expressions: drug-response patterns (sudden expression then gradual
//! suppression), stem-cell differentiation (high-flat then falling), and
//! outlier hunting (two expression peaks in a short window).
//!
//! ```sh
//! cargo run --example genomics
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use shapesearch::datagen::generators;
use shapesearch::prelude::*;
use shapesearch_datastore::Trendline;

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut genes: Vec<Trendline> = Vec::new();

    // Drug-response genes: stable low, sudden expression, gradual decay
    // ("immediately after the treatment they suddenly get expressed, and
    // then as the effect of treatment subsides, the expression reduces
    // gradually").
    for i in 0..6 {
        let ys =
            generators::piecewise(&mut rng, 48, &[(1.2, 0.05), (0.25, 2.2), (2.0, -1.9)], 0.05);
        genes.push(Trendline::from_pairs(
            format!("drug_response_{i}"),
            &generators::with_index_x(&ys),
        ));
    }
    // Stem-cell self-renewal genes: rising ~45° then high and flat.
    for i in 0..6 {
        let ys = generators::piecewise(&mut rng, 48, &[(1.0, 1.5), (1.0, 0.02)], 0.05);
        genes.push(Trendline::from_pairs(
            format!("stem_{i}"),
            &generators::with_index_x(&ys),
        ));
    }
    // The pvt1-style outlier: two peaks within a short window.
    let mut ys = generators::random_walk(&mut rng, 48, 0.0, 0.02);
    generators::inject_dip(&mut ys, 0.42, 0.06, -1.8); // inverted dip = peak
    generators::inject_dip(&mut ys, 0.58, 0.06, -1.8);
    genes.push(Trendline::from_pairs(
        "pvt1",
        &generators::with_index_x(&ys),
    ));
    // Background genes: slow noisy walks.
    for i in 0..12 {
        let ys = generators::random_walk(&mut rng, 48, 0.0, 0.05);
        genes.push(Trendline::from_pairs(
            format!("bg_{i}"),
            &generators::with_index_x(&ys),
        ));
    }

    let engine = ShapeEngine::from_trendlines(genes);

    // R1's first query, via natural language: genes that suddenly get
    // expressed, then their expression drops back.
    let parsed = parse_natural_language("show me genes rising suddenly and then dropping")
        .expect("parseable");
    println!("NL → {}", parsed.query);
    let hits = engine.top_k(&parsed.query, 6).expect("run");
    println!("drug-response candidates:");
    for r in &hits {
        println!("  {:20} {:+.3}", r.key, r.score);
    }
    assert!(
        hits[0].key.starts_with("drug_response"),
        "top: {}",
        hits[0].key
    );

    // R2's stem-cell query, via regex: a steady rise then high and flat.
    // (On the unit canvas a rise covering half the x range and the full y
    // range fits a ~63° line, so θ=60 is the faithful slope query.)
    let stem = parse_regex("[p=60][p=flat]").expect("valid");
    let hits = engine.top_k(&stem, 6).expect("run");
    println!("stem-cell candidates:");
    for r in &hits {
        println!("  {:20} {:+.3}", r.key, r.score);
    }
    let stem_hits = hits
        .iter()
        .take(3)
        .filter(|r| r.key.starts_with("stem"))
        .count();
    assert!(
        stem_hits >= 2,
        "top-3 {:?}",
        hits.iter().map(|r| &r.key).collect::<Vec<_>>()
    );

    // R1's outlier hunt: two peaks in a short duration.
    let two_peaks = parse_regex("[p=[[p=up][p=down]], m={2,}]").expect("valid");
    let hits = engine.top_k(&two_peaks, 3).expect("run");
    println!("two-peak outliers:");
    for r in &hits {
        println!("  {:20} {:+.3}", r.key, r.score);
    }
    assert!(hits.iter().any(|r| r.key == "pvt1"));
}
