//! The astronomy scenarios from §1 and §3: transit dips in stellar
//! luminosity, supernova-style sharp peaks, and the POSITION (`$`)
//! primitive for objects whose approach slows down.
//!
//! ```sh
//! cargo run --example astronomy
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use shapesearch::datagen::generators;
use shapesearch::prelude::*;
use shapesearch_datastore::Trendline;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(1977);
    let mut stars: Vec<Trendline> = Vec::new();

    // Stars with transit dips: "a dip in brightness is symbolic of a
    // planetary object passing between the star and the telescope".
    for i in 0..5 {
        let mut ys = generators::random_walk(&mut rng, 120, 0.0, 0.01);
        generators::inject_dip(&mut ys, 0.3 + 0.1 * i as f64, 0.05, 1.5);
        stars.push(Trendline::from_pairs(
            format!("transit_{i}"),
            &generators::with_index_x(&ys),
        ));
    }
    // A supernova: sharp luminosity peak.
    let mut ys = generators::random_walk(&mut rng, 120, 0.0, 0.01);
    generators::inject_dip(&mut ys, 0.5, 0.04, -3.0);
    stars.push(Trendline::from_pairs(
        "sn2026a",
        &generators::with_index_x(&ys),
    ));
    // An approaching object that slows: brightness rises fast then slower
    // (the paper's [p=up][p=$0, m=<] example) — and its mirror image, an
    // accelerating object, to contrast against.
    let ys = generators::piecewise(&mut rng, 120, &[(1.0, 2.0), (1.0, 0.4)], 0.01);
    stars.push(Trendline::from_pairs(
        "slowing_object",
        &generators::with_index_x(&ys),
    ));
    let ys = generators::piecewise(&mut rng, 120, &[(1.0, 0.4), (1.0, 2.0)], 0.01);
    stars.push(Trendline::from_pairs(
        "accelerating_object",
        &generators::with_index_x(&ys),
    ));
    // Quiet stars.
    for i in 0..10 {
        let ys = generators::random_walk(&mut rng, 120, 0.0, 0.015);
        stars.push(Trendline::from_pairs(
            format!("quiet_{i}"),
            &generators::with_index_x(&ys),
        ));
    }

    let mut engine = ShapeEngine::from_trendlines(stars);

    // Transit dips: "the width and the degree of dips are used for
    // characterizing these planetary objects" (§1) — a dip confined to a
    // ~15-day window, via the ITERATOR sub-primitive and a nested pattern.
    let transit = parse_regex("[x.s=., x.e=.+15, p=[[p=down, m=>>][p=up, m=>>]]]").expect("valid");
    println!("transit query: {transit}");
    let hits = engine.top_k(&transit, 5).expect("run");
    println!("transit candidates:");
    for r in &hits {
        println!("  {:16} {:+.3}  window {:?}", r.key, r.score, r.ranges);
    }
    assert!(hits[0].key.starts_with("transit"), "top: {}", hits[0].key);

    // Supernova: "find me objects with a sharp peak in luminosity" (§2) —
    // the inverse window: sharp rise then sharp fall.
    let nova = parse_regex("[x.s=., x.e=.+15, p=[[p=up, m=>>][p=down, m=>>]]]").expect("valid");
    let hits = engine.top_k(&nova, 3).expect("run");
    println!("supernova candidates:");
    for r in &hits {
        println!("  {:16} {:+.3}", r.key, r.score);
    }
    assert_eq!(hits[0].key, "sn2026a");

    // The POSITION example: "[p=up][p=$0, m=<] ... to search for celestial
    // objects that were initially moving fast towards earth, but after some
    // point either slowed down or started moving away" (§3.1).
    let slowing = parse_regex("[p=up][p=$0, m=<]").expect("valid");
    let all = engine.top_k(&slowing, 50).expect("run");
    let score_of = |key: &str| {
        all.iter()
            .find(|r| r.key == key)
            .map(|r| r.score)
            .expect("present")
    };
    println!(
        "slowing-approach query ranks slowing {:+.3} vs accelerating {:+.3}",
        score_of("slowing_object"),
        score_of("accelerating_object")
    );
    assert!(score_of("slowing_object") > score_of("accelerating_object"));
    // And the mirror query prefers the accelerating object.
    let accel = parse_regex("[p=up][p=$0, m=>]").expect("valid");
    let all = engine.top_k(&accel, 50).expect("run");
    let score_of = |key: &str| {
        all.iter()
            .find(|r| r.key == key)
            .map(|r| r.score)
            .expect("present")
    };
    println!(
        "accelerating-approach query ranks accelerating {:+.3} vs slowing {:+.3}",
        score_of("accelerating_object"),
        score_of("slowing_object")
    );
    assert!(score_of("accelerating_object") > score_of("slowing_object"));

    // A user-defined pattern: relative dip depth ≥ 20% of the range.
    engine.register_udp(
        "deep_dip",
        Arc::new(|ys: &[f64]| {
            let max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let depth = max - min;
            (2.0 * depth - 1.0).clamp(-1.0, 1.0)
        }),
    );
    let udp = parse_regex("[p=udp:deep_dip]").expect("valid");
    let hits = engine.top_k(&udp, 3).expect("run");
    println!("deep-variation objects (UDP):");
    for r in &hits {
        println!("  {:16} {:+.3}", r.key, r.score);
    }
}
