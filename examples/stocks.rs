//! The introduction's finance motivation: chart-pattern hunting with
//! width constraints — double tops ("at least 2 peaks within a span"),
//! head-and-shoulders, and W-shapes.
//!
//! ```sh
//! cargo run --example stocks
//! ```

use shapesearch::datagen::table11;
use shapesearch::prelude::*;

fn main() {
    // A mixed market: chart patterns interleaved with random walks.
    let stocks = table11::stocks(2024, 40, 160);
    let engine = ShapeEngine::from_trendlines(stocks);

    // Double top: "finding stocks with at least 2 peaks" (§1).
    let double_top = parse_regex("[p=[[p=up][p=down]], m={2,}]").expect("valid");
    println!("double-top query: {double_top}");
    let hits = engine.top_k(&double_top, 5).expect("run");
    for r in &hits {
        println!("  {:10} {:+.3}", r.key, r.score);
    }

    // Head and shoulders: up-down-up-down-up-down with the head in the
    // middle (here approximated by the 6-part sequence).
    let hns = parse_regex("[p=up][p=down][p=up][p=down][p=up][p=down]").expect("valid");
    let hits = engine.top_k(&hns, 3).expect("run");
    println!("head-and-shoulders candidates:");
    for r in &hits {
        println!("  {:10} {:+.3}  segments {:?}", r.key, r.score, r.ranges);
    }

    // W-shape with POSITION: second rebound at least as steep as the first
    // ([p=down][p=up][p=down][p=$1, m=>]).
    let w = parse_regex("[p=down][p=up][p=down][p=$1, m=>]").expect("valid");
    let hits = engine.top_k(&w, 3).expect("run");
    println!("W-shapes with a stronger second rebound:");
    for r in &hits {
        println!("  {:10} {:+.3}", r.key, r.score);
    }

    // Width-constrained: the sharpest rise within a 20-day window
    // ([x.s=., x.e=.+20, p=up] — the ITERATOR sub-primitive).
    let sharp_rise = parse_regex("[x.s=., x.e=.+20, p=up]").expect("valid");
    let hits = engine.top_k(&sharp_rise, 3).expect("run");
    println!("sharpest 20-day rises:");
    for r in &hits {
        println!("  {:10} {:+.3}  window {:?}", r.key, r.score, r.ranges);
    }
}
