//! The natural-language and sketch front-ends: how free-text queries are
//! tagged, resolved, and translated (with Table-4 ambiguity resolutions
//! surfaced), and how a drawn stroke becomes a query.
//!
//! ```sh
//! cargo run --example natural_language
//! ```

use shapesearch::parser::sketch::{sketch_to_pattern_query, sketch_to_precise_query, Canvas};
use shapesearch::parser::NlParser;

fn main() {
    // Train the tagger once (the paper trains a CRF on 250 tagged queries;
    // here a seeded synthetic corpus stands in).
    let parser = NlParser::train_default();

    let queries = [
        "show me genes that are rising, then going down, and then increasing",
        "stocks increasing sharply from 2 to 5 then falling",
        "cities that are either stable or declining",
        "trendlines with at least 2 peaks",
        "products not flat over 3 months",
        "increasing from y = 10 to y = 5", // the paper's semantic-ambiguity example
    ];
    for text in queries {
        match parser.parse(text) {
            Ok(parsed) => {
                println!("NL:    {text}");
                println!("query: {}", parsed.query);
                let tags: Vec<String> = parsed
                    .entities
                    .iter()
                    .filter(|e| e.label != "O")
                    .map(|e| format!("{}/{}", e.token, e.label))
                    .collect();
                println!("tags:  {}", tags.join(" "));
                for note in &parsed.notes {
                    println!("note:  {note}");
                }
                println!();
            }
            Err(e) => println!("NL:    {text}\nerror: {e}\n"),
        }
    }

    // Sketching: a stroke drawn on a 200×100 canvas mapped to a year of
    // prices 0..500. Pixel y grows downward.
    let canvas = Canvas {
        width: 200.0,
        height: 100.0,
        x_domain: (0.0, 365.0),
        y_domain: (0.0, 500.0),
    };
    let stroke: Vec<(f64, f64)> = (0..=20)
        .map(|i| {
            let x = i as f64 * 10.0;
            let y = if i <= 10 {
                90.0 - 8.0 * i as f64
            } else {
                10.0 + 8.0 * (i - 10) as f64
            };
            (x, y)
        })
        .collect();

    let blurry = sketch_to_pattern_query(&stroke, &canvas, 0.1).expect("enough points");
    println!("sketch (blurry)  → {blurry}");

    let precise = sketch_to_precise_query(&stroke, &canvas).expect("enough points");
    let shapesearch::core::ShapeQuery::Segment(seg) = &precise else {
        unreachable!("precise sketches are single segments")
    };
    println!(
        "sketch (precise) → v with {} domain points, first {:?}",
        seg.sketch.as_ref().expect("sketch").len(),
        seg.sketch.as_ref().expect("sketch")[0]
    );
}
