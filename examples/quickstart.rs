//! Quickstart: load a CSV, issue a visual-regex ShapeQuery, print the top
//! matches with their fitted segmentation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shapesearch::prelude::*;

fn main() {
    // A small product-sales dataset, inline for the example. Real usage:
    // `datastore::csv::read_file("sales.csv")`.
    let csv = "\
product,week,sales
widget,1,12
widget,2,19
widget,3,28
widget,4,41
widget,5,33
widget,6,21
widget,7,14
gadget,1,30
gadget,2,27
gadget,3,24
gadget,4,22
gadget,5,26
gadget,6,31
gadget,7,36
doodad,1,20
doodad,2,21
doodad,3,19
doodad,4,20
doodad,5,21
doodad,6,20
doodad,7,19
";
    let table = shapesearch::datastore::csv::read_str(csv).expect("valid CSV");

    // The visual parameters R: one candidate visualization per product,
    // x = week, y = sales.
    let spec = VisualSpec::new("product", "week", "sales");
    let engine = ShapeEngine::new(&table, &spec).expect("engine");

    // "Rising then falling" — a peak.
    let query = parse_regex("[p=up][p=down]").expect("valid query");
    println!("query: {query}");

    let results = engine.top_k(&query, 3).expect("execution");
    for (rank, r) in results.iter().enumerate() {
        println!(
            "#{}: {:8}  score {:+.3}  fitted segments: {:?}",
            rank + 1,
            r.key,
            r.score,
            r.ranges
        );
    }
    assert_eq!(results[0].key, "widget");

    // A dip instead: "falling then rising".
    let dip = parse_regex("[p=down][p=up]").expect("valid query");
    let results = engine.top_k(&dip, 1).expect("execution");
    println!(
        "best dip: {} (score {:+.3})",
        results[0].key, results[0].score
    );
    assert_eq!(results[0].key, "gadget");
}
